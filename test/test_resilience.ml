(* Suites for Bist_resilience and the preemption plumbing: CRC32 and
   atomic writes, deadline/cancel/ctl semantics, the checkpoint container
   (corruption and mismatch are typed errors, never escapes), the
   snapshot codecs, and the headline invariant — interrupt/resume is
   bit-identical to an uninterrupted run for the engine, compaction and
   the injection campaign. *)

module Crc32 = Bist_resilience.Crc32
module Atomic_io = Bist_resilience.Atomic_io
module Deadline = Bist_resilience.Deadline
module Cancel = Bist_resilience.Cancel
module Ctl = Bist_resilience.Ctl
module Checkpoint = Bist_resilience.Checkpoint
module Io = Checkpoint.Io
module Rng = Bist_util.Rng
module Bitset = Bist_util.Bitset
module Tseq = Bist_logic.Tseq
module Universe = Bist_fault.Universe
module Engine = Bist_tgen.Engine
module Compaction = Bist_tgen.Compaction
module Campaign = Bist_inject.Campaign

let qcheck = QCheck_alcotest.to_alcotest

(* A clock that reports epoch 0.0 for its first [after_calls] samples and
   jumps far past any deadline afterwards: deterministic preemption at
   the n-th safe-point poll, no wall clock involved. *)
let expiring_clock ~after_calls =
  let calls = ref 0 in
  fun () ->
    incr calls;
    if !calls > after_calls then 1.0e9 else 0.0

let expiring_ctl ~after_calls =
  Ctl.create ~deadline:(Deadline.after ~clock:(expiring_clock ~after_calls) 1.0) ()

(* crc32 *)

let test_crc32_vectors () =
  Alcotest.(check int32) "check vector" 0xCBF43926l (Crc32.string "123456789");
  Alcotest.(check int32) "empty" 0l (Crc32.string "");
  let s = "the quick brown fox jumps over the lazy dog" in
  let split = 17 in
  let incremental =
    Crc32.update
      (Crc32.update 0l s ~pos:0 ~len:split)
      s ~pos:split ~len:(String.length s - split)
  in
  Alcotest.(check int32) "incremental = one-shot" (Crc32.string s) incremental

(* atomic writes *)

let test_atomic_write_roundtrip () =
  let path = Filename.temp_file "bist_atomic" ".bin" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let payload = String.init 4096 (fun i -> Char.chr (i mod 256)) in
      Atomic_io.write_file ~path payload;
      Alcotest.(check string) "roundtrip" payload (Atomic_io.read_file ~path);
      (* overwrite in place: readers only ever see old or new, and no
         temp file survives *)
      Atomic_io.write_file ~path "second";
      Alcotest.(check string) "overwrite" "second" (Atomic_io.read_file ~path);
      let dir = Filename.dirname path and base = Filename.basename path in
      let leftovers =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f ->
               f <> base
               && String.length f > String.length base
               && String.sub f 0 (String.length base) = base)
      in
      Alcotest.(check (list string)) "no temp leftovers" [] leftovers)

(* deadline / cancel / ctl *)

let test_deadline_fake_clock () =
  let d = Deadline.after ~clock:(expiring_clock ~after_calls:3) 1.0 in
  (* creation consumed one sample; two more are still "before" *)
  Alcotest.(check bool) "not yet" false (Deadline.expired d);
  Alcotest.(check bool) "still not" false (Deadline.expired d);
  Alcotest.(check bool) "now expired" true (Deadline.expired d);
  Alcotest.(check bool) "stays expired" true (Deadline.expired d)

let test_deadline_rejects_nonpositive () =
  Alcotest.(check bool) "raises" true
    (match Deadline.after 0.0 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_cancel_across_domains () =
  let c = Cancel.create () in
  Alcotest.(check bool) "initially clear" false (Cancel.requested c);
  (* request from another domain; the atomic must be visible here *)
  let d = Domain.spawn (fun () -> Cancel.request c) in
  Domain.join d;
  Alcotest.(check bool) "visible after join" true (Cancel.requested c);
  let observed = Domain.spawn (fun () -> Cancel.requested c) in
  Alcotest.(check bool) "visible in a third domain" true (Domain.join observed)

let test_ctl_progress_gates_deadline () =
  (* one clock sample is consumed at creation; every later one is late *)
  let ctl = expiring_ctl ~after_calls:1 in
  (* deadline already expired, but no step has committed: a preemption
     here could livelock resume, so the ctl must hold fire *)
  Alcotest.(check bool) "gated" true (Ctl.stop_reason ctl = None);
  Ctl.note_progress ctl;
  Alcotest.(check bool) "fires after progress" true
    (Ctl.stop_reason ctl = Some Ctl.Deadline_exceeded)

let test_ctl_cancel_immediate () =
  let cancel = Cancel.create () in
  let ctl = Ctl.create ~cancel () in
  Alcotest.(check bool) "clear" true (Ctl.stop_reason ctl = None);
  Cancel.request cancel;
  (* no progress yet — cancellation must still fire (SIGTERM semantics) *)
  Alcotest.(check bool) "immediate" true
    (Ctl.stop_reason ctl = Some Ctl.Cancelled);
  Alcotest.(check bool) "check raises Preempted" true
    (match Ctl.check ctl with
    | () -> false
    | exception Ctl.Preempted Ctl.Cancelled -> true)

(* the checkpoint container *)

let sample_header () =
  {
    Checkpoint.kind = "tgen";
    circuit = "s27";
    fingerprint = 0xDEADBEEFl;
    payload = "some opaque payload bytes";
  }

let expect_corrupt name f =
  Alcotest.(check bool) name true
    (match f () with
    | _ -> false
    | exception Checkpoint.Corrupt _ -> true)

let expect_mismatch name f =
  Alcotest.(check bool) name true
    (match f () with
    | _ -> false
    | exception Checkpoint.Mismatch _ -> true)

let test_container_roundtrip () =
  let h = sample_header () in
  let h' = Checkpoint.decode (Checkpoint.encode h) in
  Alcotest.(check string) "kind" h.kind h'.Checkpoint.kind;
  Alcotest.(check string) "circuit" h.circuit h'.Checkpoint.circuit;
  Alcotest.(check int32) "fingerprint" h.fingerprint h'.Checkpoint.fingerprint;
  Alcotest.(check string) "payload" h.payload h'.Checkpoint.payload

let test_container_corruption_is_typed () =
  let data = Checkpoint.encode (sample_header ()) in
  expect_corrupt "truncated" (fun () ->
      Checkpoint.decode (String.sub data 0 (String.length data - 3)));
  expect_corrupt "empty" (fun () -> Checkpoint.decode "");
  expect_corrupt "bad magic" (fun () ->
      Checkpoint.decode ("XISTCKPT" ^ String.sub data 8 (String.length data - 8)));
  (* flip one payload byte: the CRC must catch it *)
  let flipped = Bytes.of_string data in
  let mid = String.length data / 2 in
  Bytes.set flipped mid (Char.chr (Char.code (Bytes.get flipped mid) lxor 0x40));
  expect_corrupt "bit flip" (fun () -> Checkpoint.decode (Bytes.to_string flipped));
  (* patch the version field and re-checksum: a valid file from a future
     format must be refused as unreadable, not misparsed *)
  let patched = Bytes.of_string (String.sub data 0 (String.length data - 4)) in
  Bytes.set_int32_le patched 8 99l;
  let body = Bytes.to_string patched in
  let tail = Bytes.create 4 in
  Bytes.set_int32_le tail 0 (Crc32.string body);
  expect_corrupt "wrong version" (fun () ->
      Checkpoint.decode (body ^ Bytes.to_string tail))

let test_container_mismatch_is_typed () =
  let h = sample_header () in
  let ok () =
    Checkpoint.ensure ~kind:"tgen" ~circuit:"s27" ~fingerprint:0xDEADBEEFl h
  in
  ok ();
  expect_mismatch "wrong kind" (fun () ->
      Checkpoint.ensure ~kind:"inject" ~circuit:"s27" ~fingerprint:0xDEADBEEFl h);
  expect_mismatch "wrong circuit" (fun () ->
      Checkpoint.ensure ~kind:"tgen" ~circuit:"x298" ~fingerprint:0xDEADBEEFl h);
  expect_mismatch "wrong fingerprint" (fun () ->
      Checkpoint.ensure ~kind:"tgen" ~circuit:"s27" ~fingerprint:1l h)

let test_load_missing_file_is_corrupt () =
  expect_corrupt "missing file" (fun () ->
      Checkpoint.load "/nonexistent/dir/never.ckpt")

let test_save_load_roundtrip () =
  let path = Filename.temp_file "bist_ckpt" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> if Sys.file_exists path then Sys.remove path)
    (fun () ->
      let h = sample_header () in
      Checkpoint.save ~path h;
      let h' = Checkpoint.load path in
      Alcotest.(check string) "payload survives" h.payload h'.Checkpoint.payload;
      (* truncate the file on disk: load must report Corrupt, cleanly *)
      let data = Atomic_io.read_file ~path in
      Atomic_io.write_file ~path (String.sub data 0 (String.length data / 2));
      expect_corrupt "truncated on disk" (fun () -> Checkpoint.load path))

(* codec round trips *)

let rng_words =
  QCheck.make
    ~print:(fun ws ->
      String.concat "," (Array.to_list (Array.map Int64.to_string ws)))
    QCheck.Gen.(
      map
        (fun (a, b, c, d) -> [| a; b; c; Int64.logor d 1L |])
        (quad (map Int64.of_int int) (map Int64.of_int int)
           (map Int64.of_int int) (map Int64.of_int int)))

let qcheck_rng_codec =
  QCheck.Test.make ~name:"rng codec round-trips the exact state" ~count:200
    rng_words (fun words ->
      let t = Rng.import words in
      let w = Io.writer () in
      Checkpoint.rng w t;
      let t' = Checkpoint.r_rng (Io.reader (Io.contents w)) in
      Rng.export t' = words && Rng.bits64 t = Rng.bits64 t')

let bitset_arb =
  QCheck.make
    ~print:(fun (cap, members) ->
      Printf.sprintf "cap %d, members [%s]" cap
        (String.concat ";" (List.map string_of_int members)))
    QCheck.Gen.(
      int_range 1 300 >>= fun cap ->
      list_size (int_range 0 50) (int_range 0 (cap - 1)) >>= fun members ->
      return (cap, members))

let qcheck_bitset_codec =
  QCheck.Test.make ~name:"bitset codec round-trips" ~count:200 bitset_arb
    (fun (cap, members) ->
      let set = Bitset.create cap in
      List.iter (Bitset.add set) members;
      let w = Io.writer () in
      Checkpoint.bitset w set;
      Bitset.equal set (Checkpoint.r_bitset (Io.reader (Io.contents w))))

let qcheck_tseq_codec =
  QCheck.Test.make ~name:"tseq codec round-trips" ~count:200
    (Testutil.seq ~width:5 ~max_len:20) (fun s ->
      let w = Io.writer () in
      Checkpoint.tseq w s;
      Tseq.equal s (Checkpoint.r_tseq (Io.reader (Io.contents w))))

let engine_snapshot_arb =
  let gen =
    QCheck.Gen.(
      int_range 0 5 >>= fun phase_tag ->
      int_range 1 60 >>= fun cap ->
      list_size (int_range 0 20) (int_range 0 (cap - 1)) >>= fun rem ->
      list_size (int_range 0 10) (int_range 0 (cap - 1)) >>= fun unt ->
      Testutil.seq_gen ~width:4 ~max_len:12 >>= fun t0 ->
      int_range 0 100 >>= fun rounds ->
      int_range 0 50 >>= fun accepted ->
      int_range 0 9 >>= fun fruitless ->
      int_range 1 1_000_000 >>= fun rng_seed ->
      list_size (int_range 0 8) (int_range 0 (cap - 1)) >>= fun ids ->
      int_range 0 (List.length ids) >>= fun next ->
      int_range 0 20 >>= fun attempts ->
      int_range 0 15 >>= fun proved ->
      int_range 0 15 >>= fun tests ->
      let bitset_of l =
        let s = Bitset.create cap in
        List.iter (Bitset.add s) l;
        s
      in
      let phase =
        match phase_tag with
        | 0 -> Engine.Standalone
        | 1 -> Engine.Rebaseline
        | 2 -> Engine.Embedded
        | 3 -> Engine.Directed_tail { ids = Array.of_list ids; next; attempts }
        | 4 -> Engine.Sat_tail { ids = Array.of_list ids; next; proved; tests }
        | _ -> Engine.Finalize
      in
      return
        {
          Engine.phase;
          t0;
          remaining = bitset_of rem;
          untestable = bitset_of unt;
          rounds;
          accepted;
          fruitless;
          rng = Rng.create rng_seed;
        })
  in
  QCheck.make
    ~print:(fun (s : Engine.snapshot) ->
      Printf.sprintf "rounds %d, accepted %d, t0 %d vectors" s.rounds
        s.accepted (Tseq.length s.t0))
    gen

let qcheck_engine_snapshot_codec =
  QCheck.Test.make ~name:"engine snapshot codec round-trips" ~count:150
    engine_snapshot_arb (fun s ->
      let w = Io.writer () in
      Engine.encode_snapshot w s;
      let r = Io.reader (Io.contents w) in
      let s' = Engine.decode_snapshot r in
      Io.expect_end r;
      Engine.snapshot_equal s s')

let qcheck_engine_snapshot_rejects_truncation =
  QCheck.Test.make ~name:"truncated engine snapshot is Corrupt" ~count:100
    engine_snapshot_arb (fun s ->
      let w = Io.writer () in
      Engine.encode_snapshot w s;
      let data = Io.contents w in
      let cut = String.length data - 5 in
      QCheck.assume (cut > 0);
      match Engine.decode_snapshot (Io.reader (String.sub data 0 cut)) with
      | _ ->
        (* a shorter prefix can still decode; it must then fail expect_end *)
        true
      | exception Checkpoint.Corrupt _ -> true)

(* interrupt/resume bit-identity *)

let s27_universe () = Universe.collapsed (Bist_bench.S27.circuit ())

let x_universe name =
  match Bist_bench.Registry.find name with
  | Some entry -> Universe.collapsed (entry.circuit ())
  | None -> Alcotest.failf "registry circuit %s missing" name

(* Run [generate] preempting it every [polls] safe-point samples,
   resuming each time from the in-memory snapshot, until it completes.
   Returns the result and how many legs it took. *)
let generate_with_preemption ~polls ~config ~seed universe =
  let rec go resume legs =
    if legs > 10_000 then Alcotest.fail "resume loop does not converge";
    let ctl = expiring_ctl ~after_calls:polls in
    let rng = Rng.create seed in
    match Engine.generate ~config ~ctl ?resume ~rng universe with
    | t0, stats -> (t0, stats, legs)
    | exception Engine.Interrupted s -> go (Some s) (legs + 1)
  in
  go None 1

let check_engine_identity ~polls ~config ~seed universe =
  let rng = Rng.create seed in
  let ref_t0, ref_stats = Engine.generate ~config ~rng universe in
  let t0, stats, legs = generate_with_preemption ~polls ~config ~seed universe in
  Alcotest.(check bool) "was actually preempted" true (legs > 1);
  Testutil.check_seq "same T0" ref_t0 t0;
  Alcotest.(check bool) "same stats" true (ref_stats = stats)

let test_engine_resume_s27 () =
  let circuit = Bist_bench.S27.circuit () in
  (* directed budget on, so the Directed_tail phase is crossed too *)
  let config =
    { (Engine.default_config circuit) with
      Engine.directed_budget = 2; patience = 4; max_length = 200 }
  in
  List.iter
    (fun polls ->
      check_engine_identity ~polls ~config ~seed:42 (s27_universe ()))
    [ 3; 17 ]

let test_engine_resume_x298 () =
  let universe = x_universe "x298" in
  let circuit = Universe.circuit universe in
  let config =
    { (Engine.default_config circuit) with Engine.patience = 3 }
  in
  check_engine_identity ~polls:257 ~config ~seed:7 universe

(* Crossing the SAT tail: the solver polls ctl mid-solve (every 256
   conflicts), so preemptions land both between queries and inside
   them; the rewind-to-boundary rule must keep resume bit-identical,
   including the sat_proved/sat_tests counters carried in the phase. *)
let test_engine_resume_sat_tail () =
  let universe = x_universe "x298" in
  let circuit = Universe.circuit universe in
  let config =
    { (Engine.default_config circuit) with
      Engine.patience = 2; sat_budget = 6; sat_frames = 3;
      sat_conflicts = 2_000 }
  in
  let rng = Rng.create 11 in
  let _, ref_stats = Engine.generate ~config ~rng universe in
  Alcotest.(check bool) "sat tail proved something" true
    (ref_stats.Engine.sat_proved > 0);
  check_engine_identity ~polls:101 ~config ~seed:11 universe

let test_engine_resume_wrong_universe_is_mismatch () =
  let config =
    { (Engine.default_config (Bist_bench.S27.circuit ())) with
      Engine.patience = 2 }
  in
  let ctl = expiring_ctl ~after_calls:2 in
  let rng = Rng.create 3 in
  match Engine.generate ~config ~ctl ~rng (s27_universe ()) with
  | _ -> Alcotest.fail "expected a preemption"
  | exception Engine.Interrupted snap ->
    expect_mismatch "resume on another circuit" (fun () ->
        Engine.generate ~resume:snap ~rng:(Rng.create 3) (x_universe "x298"))

let test_compaction_resume_identity () =
  let universe = s27_universe () in
  let rng = Rng.create 5 in
  let t0, _ = Engine.generate ~rng universe in
  let ref_seq, ref_stats = Compaction.compact ~max_trials:200 universe t0 in
  let rec go resume legs =
    if legs > 10_000 then Alcotest.fail "resume loop does not converge";
    let ctl = expiring_ctl ~after_calls:5 in
    match Compaction.compact ~max_trials:200 ~ctl ?resume universe t0 with
    | seq, stats -> (seq, stats, legs)
    | exception Compaction.Interrupted s -> go (Some s) (legs + 1)
  in
  let seq, stats, legs = go None 1 in
  Alcotest.(check bool) "was actually preempted" true (legs > 1);
  Testutil.check_seq "same compacted sequence" ref_seq seq;
  Alcotest.(check bool) "same stats" true (ref_stats = stats)

let test_compaction_snapshot_codec () =
  let universe = s27_universe () in
  let rng = Rng.create 5 in
  let t0, _ = Engine.generate ~rng universe in
  let ctl = expiring_ctl ~after_calls:4 in
  match Compaction.compact ~ctl universe t0 with
  | _ -> Alcotest.fail "expected a preemption"
  | exception Compaction.Interrupted s ->
    let w = Io.writer () in
    Compaction.encode_snapshot w s;
    let r = Io.reader (Io.contents w) in
    let s' = Compaction.decode_snapshot r in
    Io.expect_end r;
    Alcotest.(check bool) "round-trips" true (Compaction.snapshot_equal s s')

let test_campaign_resume_identity () =
  let circuit = Bist_bench.S27.circuit () in
  let config = { Campaign.default_config with Campaign.count = 40 } in
  let reference = Campaign.run ~config ~name:"s27" circuit in
  let rec go resume legs =
    if legs > 10_000 then Alcotest.fail "resume loop does not converge";
    let ctl = expiring_ctl ~after_calls:2 in
    match Campaign.run ~config ~ctl ?resume ~name:"s27" circuit with
    | c -> (c, legs)
    | exception Campaign.Interrupted trials -> go (Some trials) (legs + 1)
  in
  let c, legs = go None 1 in
  Alcotest.(check bool) "was actually preempted" true (legs > 1);
  Alcotest.(check int) "same trial count"
    (List.length reference.Campaign.trials)
    (List.length c.Campaign.trials);
  Alcotest.(check bool) "identical trials" true
    (reference.Campaign.trials = c.Campaign.trials);
  Alcotest.(check bool) "identical tallies" true
    ( reference.Campaign.corrected = c.Campaign.corrected
    && reference.Campaign.detected = c.Campaign.detected
    && reference.Campaign.benign = c.Campaign.benign
    && reference.Campaign.escaped = c.Campaign.escaped );
  (* trial codec round-trips the whole list *)
  let w = Io.writer () in
  Campaign.encode_trials w c.Campaign.trials;
  let r = Io.reader (Io.contents w) in
  let trials' = Campaign.decode_trials r in
  Io.expect_end r;
  Alcotest.(check bool) "trial codec round-trips" true
    (c.Campaign.trials = trials');
  (* rebuild reproduces the campaign record without re-running *)
  let rebuilt =
    Campaign.rebuild ~name:"s27" ~config ~sync_found:c.Campaign.sync_found
      c.Campaign.trials
  in
  Alcotest.(check bool) "rebuild matches" true
    (rebuilt.Campaign.escaped = c.Campaign.escaped
    && rebuilt.Campaign.corrected = c.Campaign.corrected)

let test_campaign_resume_wrong_config_is_mismatch () =
  let circuit = Bist_bench.S27.circuit () in
  let config = { Campaign.default_config with Campaign.count = 30 } in
  let ctl = expiring_ctl ~after_calls:2 in
  match Campaign.run ~config ~ctl ~name:"s27" circuit with
  | _ -> Alcotest.fail "expected a preemption"
  | exception Campaign.Interrupted trials ->
    Alcotest.(check bool) "some trials completed" true (trials <> []);
    expect_mismatch "different seed" (fun () ->
        Campaign.run
          ~config:{ config with Campaign.seed = config.Campaign.seed + 1 }
          ~resume:trials ~name:"s27" circuit)

let test_procedure1_cancel_is_immediate () =
  let universe = s27_universe () in
  let t0 = Bist_bench.S27.t0 () in
  let cancel = Cancel.create () in
  Cancel.request cancel;
  let ctl = Ctl.create ~cancel () in
  Alcotest.(check bool) "Preempted before any target" true
    (match
       Bist_core.Procedure1.run ~ctl ~rng:(Rng.create 1) ~n:2 ~t0 universe
     with
    | _ -> false
    | exception Ctl.Preempted Ctl.Cancelled -> true)

let suite =
  [
    Alcotest.test_case "crc32 known vectors" `Quick test_crc32_vectors;
    Alcotest.test_case "atomic write round-trip" `Quick test_atomic_write_roundtrip;
    Alcotest.test_case "deadline with fake clock" `Quick test_deadline_fake_clock;
    Alcotest.test_case "deadline rejects non-positive" `Quick
      test_deadline_rejects_nonpositive;
    Alcotest.test_case "cancel crosses domains" `Quick test_cancel_across_domains;
    Alcotest.test_case "deadline gated on progress" `Quick
      test_ctl_progress_gates_deadline;
    Alcotest.test_case "cancel is immediate" `Quick test_ctl_cancel_immediate;
    Alcotest.test_case "container round-trip" `Quick test_container_roundtrip;
    Alcotest.test_case "corruption is typed" `Quick
      test_container_corruption_is_typed;
    Alcotest.test_case "mismatch is typed" `Quick test_container_mismatch_is_typed;
    Alcotest.test_case "missing file is Corrupt" `Quick
      test_load_missing_file_is_corrupt;
    Alcotest.test_case "save/load round-trip" `Quick test_save_load_roundtrip;
    qcheck qcheck_rng_codec;
    qcheck qcheck_bitset_codec;
    qcheck qcheck_tseq_codec;
    qcheck qcheck_engine_snapshot_codec;
    qcheck qcheck_engine_snapshot_rejects_truncation;
    Alcotest.test_case "engine interrupt/resume is bit-identical (s27)" `Slow
      test_engine_resume_s27;
    Alcotest.test_case "engine interrupt/resume is bit-identical (x298)" `Slow
      test_engine_resume_x298;
    Alcotest.test_case "engine interrupt/resume crosses the SAT tail" `Slow
      test_engine_resume_sat_tail;
    Alcotest.test_case "engine resume on wrong circuit is Mismatch" `Quick
      test_engine_resume_wrong_universe_is_mismatch;
    Alcotest.test_case "compaction interrupt/resume is bit-identical" `Slow
      test_compaction_resume_identity;
    Alcotest.test_case "compaction snapshot codec" `Quick
      test_compaction_snapshot_codec;
    Alcotest.test_case "campaign interrupt/resume is identical" `Slow
      test_campaign_resume_identity;
    Alcotest.test_case "campaign resume under wrong config is Mismatch" `Quick
      test_campaign_resume_wrong_config_is_mismatch;
    Alcotest.test_case "procedure1 cancel is immediate" `Quick
      test_procedure1_cancel_is_immediate;
  ]
