(* Suites for Bist_parallel: the domain pool's chunking, exception and
   reuse behaviour; the determinism contract of the sharded fault
   simulator (parallel table == sequential table, bit for bit); the
   Packed_sim / Event_sim cross-check that pins the kernel every shard
   replicates; and the Rng-splitting protocol for randomness that crosses
   a domain boundary. *)

module Pool = Bist_parallel.Pool
module Shard = Bist_parallel.Shard
module Tune = Bist_parallel.Tune
module Rng = Bist_util.Rng
module Bitset = Bist_util.Bitset
module Tseq = Bist_logic.Tseq
module T = Bist_logic.Ternary
module Netlist = Bist_circuit.Netlist
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Fault_table = Bist_fault.Fault_table

(* Suite-level pools, shared by every test below — which is itself a
   standing check that a pool survives arbitrary reuse. Widths are
   explicit: even on a single-core host the domains exist and
   interleave, so the parallel path is really exercised. *)
let pool1 = Pool.create ~jobs:1 ()
let pool2 = Pool.create ~jobs:2 ()
let pool4 = Pool.create ~jobs:4 ()

(* Sharding forced regardless of this host's core count or the measured
   crossover, so the parallel machinery is really exercised. *)
let tune_forced () = Tune.create ~min_units:1 ()

(* Shard.partition *)

let test_partition_boundaries () =
  Alcotest.(check int) "empty input, no chunks" 0
    (Array.length (Shard.partition ~chunks:4 [||]));
  let p = Shard.partition ~chunks:8 [| 10; 11; 12 |] in
  Alcotest.(check int) "fewer items than chunks" 3 (Array.length p);
  Array.iter
    (fun c -> Alcotest.(check int) "chunk size 1" 1 (Array.length c))
    p;
  let arr = Array.init 10 Fun.id in
  let p = Shard.partition ~chunks:3 arr in
  Alcotest.(check (list int)) "balanced within one" [ 4; 3; 3 ]
    (List.map Array.length (Array.to_list p));
  Alcotest.(check (list int)) "concatenation preserves order"
    (Array.to_list arr)
    (List.concat_map Array.to_list (Array.to_list p));
  Alcotest.(check int) "chunks clamped to >= 1" 1
    (Array.length (Shard.partition ~chunks:0 [| 1; 2 |]))

let test_merge_scatter () =
  let det_time, detected =
    Shard.merge ~size:6
      [|
        { Shard.ids = [| 0; 2 |]; det_time = [| 3; -1 |] };
        { Shard.ids = [| 4; 5 |]; det_time = [| 0; 7 |] };
      |]
  in
  Alcotest.(check (array int)) "scattered times" [| 3; -1; -1; -1; 0; 7 |] det_time;
  Alcotest.(check (list int)) "detected set" [ 0; 4; 5 ] (Bitset.elements detected);
  Alcotest.check_raises "arity enforced"
    (Invalid_argument "Shard.merge: ids/det_time length mismatch") (fun () ->
      ignore (Shard.merge ~size:3 [| { Shard.ids = [| 0 |]; det_time = [||] } |]))

let test_detections_empty_universe () =
  let det_time, detected =
    Shard.detections ~pool:pool4 ~size:5 ~f:(fun ids -> Array.map (fun _ -> 0) ids)
      [||]
  in
  Alcotest.(check (array int)) "all undetected" (Array.make 5 (-1)) det_time;
  Alcotest.(check bool) "nothing detected" true (Bitset.is_empty detected)

(* Pool.map_chunks *)

let test_map_chunks_basic () =
  List.iter
    (fun pool ->
      Alcotest.(check (array int)) "empty" [||] (Pool.map_chunks pool Fun.id [||]);
      let input = Array.init 23 Fun.id in
      Alcotest.(check (array int)) "input order"
        (Array.map (fun i -> i * i) input)
        (Pool.map_chunks pool (fun i -> i * i) input))
    [ pool1; pool2; pool4 ]

let test_exception_from_worker () =
  (* The first task parks the caller so a worker domain picks up the
     failing tasks; with two failures the lowest input index wins, making
     the propagated exception deterministic under any schedule. *)
  Alcotest.check_raises "lowest-index failure propagates" (Failure "boom2")
    (fun () ->
      ignore
        (Pool.map_chunks pool4
           (fun i ->
             if i = 0 then Unix.sleepf 0.02;
             if i = 2 then failwith "boom2";
             if i = 5 then failwith "boom5";
             i)
           (Array.init 8 Fun.id)));
  (* The failed batch must not poison the pool. *)
  Alcotest.(check (array int)) "pool survives a raising batch"
    [| 0; 2; 4; 6 |]
    (Pool.map_chunks pool4 (fun i -> 2 * i) (Array.init 4 Fun.id))

let test_pool_reuse () =
  for round = 1 to 10 do
    let got = Pool.map_chunks pool2 (fun i -> i + round) (Array.init 7 Fun.id) in
    Alcotest.(check (array int))
      (Printf.sprintf "round %d" round)
      (Array.init 7 (fun i -> i + round))
      got
  done

let test_shutdown_falls_back () =
  let p = Pool.create ~jobs:3 () in
  Alcotest.(check int) "width" 3 (Pool.jobs p);
  Alcotest.(check (array int)) "parallel" [| 0; 1; 4; 9 |]
    (Pool.map_chunks p (fun i -> i * i) (Array.init 4 Fun.id));
  Pool.shutdown p;
  Pool.shutdown p;
  Alcotest.(check (array int)) "sequential after shutdown" [| 0; 1; 4; 9 |]
    (Pool.map_chunks p (fun i -> i * i) (Array.init 4 Fun.id))

(* Rng splitting across domains *)

let test_rng_split_across_domains () =
  (* Oracle: split one child per chunk off a copy of the parent and draw
     the streams sequentially. *)
  let parent = Rng.create 2024 in
  let oracle = Rng.copy parent in
  let o1 = Rng.split oracle in
  let o2 = Rng.split oracle in
  let expect1 = Array.init 256 (fun _ -> Rng.bits64 o1) in
  let expect2 = Array.init 256 (fun _ -> Rng.bits64 o2) in
  (* Live: the same two children, drawn concurrently on two domains.
     Because each child owns disjoint generator state, the concurrent
     draws cannot interleave into a shared stream — both streams must
     reproduce the sequential oracle exactly. *)
  let c1 = Rng.split parent in
  let c2 = Rng.split parent in
  let d = Domain.spawn (fun () -> Array.init 256 (fun _ -> Rng.bits64 c1)) in
  let got2 = Array.init 256 (fun _ -> Rng.bits64 c2) in
  let got1 = Domain.join d in
  Alcotest.(check (array int64)) "domain 1 matches oracle" expect1 got1;
  Alcotest.(check (array int64)) "domain 2 matches oracle" expect2 got2

let test_map_chunks_rng_width_independent () =
  (* Children are split in input order before dispatch, so the combined
     result is a pure function of the parent seed — for any pool width. *)
  let run pool =
    let rng = Rng.create 99 in
    Pool.map_chunks_rng pool ~rng
      (fun r x -> (x, Rng.int r 1_000_000, Rng.int r 1_000_000))
      (Array.init 9 Fun.id)
    |> Array.to_list
  in
  let reference = run pool1 in
  Alcotest.(check bool) "jobs=2 identical" true (run pool2 = reference);
  Alcotest.(check bool) "jobs=4 identical" true (run pool4 = reference)

(* Determinism contract of the sharded fault simulator *)

let same_table reference table universe =
  Bitset.equal (Fault_table.detected reference) (Fault_table.detected table)
  && Array.for_all
       (fun id -> Fault_table.udet reference id = Fault_table.udet table id)
       (Array.init (Universe.size universe) Fun.id)

let fault_table_determinism =
  Testutil.qcheck
    (QCheck.Test.make
       ~name:"parallel fault table == sequential (jobs in {1,2,4})" ~count:30
       QCheck.(pair (int_range 0 300) (int_range 1 1_000_000))
       (fun (cseed, sseed) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Rng.create sseed in
         let seq =
           Tseq.random_binary rng
             ~width:(Netlist.num_inputs circuit)
             ~length:(8 + (sseed mod 40))
         in
         let reference = Fault_table.compute ~pool:pool1 universe seq in
         same_table reference
           (Fault_table.compute ~pool:pool2 ~tune:(tune_forced ()) universe seq)
           universe
         && same_table reference
              (Fault_table.compute ~pool:pool4 ~tune:(tune_forced ()) universe seq)
              universe))

(* The acceptance bar of this PR: on every registry circuit, the jobs=4
   table is bit-identical to the sequential one. *)
let test_registry_tables_identical () =
  List.iter
    (fun (entry : Bist_bench.Registry.entry) ->
      let circuit = entry.circuit () in
      let universe = Universe.collapsed circuit in
      let rng = Rng.create 7 in
      let seq =
        Tseq.random_binary rng ~width:(Netlist.num_inputs circuit) ~length:24
      in
      let reference = Fault_table.compute ~pool:pool1 universe seq in
      let parallel =
        Fault_table.compute ~pool:pool4 ~tune:(tune_forced ()) universe seq
      in
      Alcotest.(check bool)
        (entry.name ^ " jobs=4 == jobs=1")
        true
        (same_table reference parallel universe))
    (Bist_bench.Registry.all ())

let test_fsim_targets_with_pool () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in
  let targets = Bitset.create (Universe.size universe) in
  for id = 0 to Universe.size universe - 1 do
    if id mod 2 = 0 then Bitset.add targets id
  done;
  let a = Fsim.run ~pool:pool1 ~targets universe t0 in
  let b = Fsim.run ~pool:pool4 ~tune:(tune_forced ()) ~targets universe t0 in
  Alcotest.(check (array int)) "target det times identical" a.Fsim.det_time
    b.Fsim.det_time;
  Alcotest.(check bool) "non-targets untouched" true
    (Array.for_all Fun.id
       (Array.mapi
          (fun id dt -> Bitset.mem targets id || dt = -1)
          b.Fsim.det_time))

(* The campaign driver shards its trials the same way. *)
let test_campaign_parallel_identical () =
  let entry = Bist_bench.Registry.s27 in
  let circuit = entry.circuit () in
  let config = { Bist_inject.Campaign.default_config with count = 30 } in
  let sequential = Bist_inject.Campaign.run ~config ~name:"s27" circuit in
  let parallel =
    Bist_inject.Campaign.run ~config ~pool:pool4 ~name:"s27" circuit
  in
  Alcotest.(check int) "corrected" sequential.corrected parallel.corrected;
  Alcotest.(check int) "detected" sequential.detected parallel.detected;
  Alcotest.(check int) "benign" sequential.benign parallel.benign;
  Alcotest.(check int) "escaped" sequential.escaped parallel.escaped;
  Alcotest.(check bool) "trial-by-trial identical" true
    (sequential.trials = parallel.trials)

(* Packed_sim vs Event_sim: the kernel each shard replicates, pinned
   against the second reference simulator (Seq_sim is covered in
   test_sim.ml). *)

let packed_lane0_matches_event_sim circuit seq =
  let expected = Bist_sim.Event_sim.run circuit seq in
  let packed = Bist_sim.Packed_sim.create circuit in
  let ok = ref true in
  Tseq.iteri
    (fun u vec ->
      Bist_sim.Packed_sim.step packed vec;
      Array.iteri
        (fun i _ ->
          let got =
            Bist_logic.Packed.get (Bist_sim.Packed_sim.po_value packed i) 0
          in
          if not (T.equal got (Bist_logic.Vector.get expected.(u) i)) then
            ok := false)
        (Netlist.outputs circuit))
    seq;
  !ok

let test_packed_vs_event_random =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Packed_sim lane 0 == Event_sim" ~count:60
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let rng = Rng.create sseed in
         let seq =
           Tseq.random_binary rng ~width:(Netlist.num_inputs circuit) ~length:len
         in
         packed_lane0_matches_event_sim circuit seq))

let test_packed_vs_event_registry_and_teaching () =
  let circuits =
    [
      Bist_bench.S27.circuit ();
      Bist_bench.Teaching.counter3 ();
      Bist_bench.Teaching.shift4 ();
      Bist_bench.Teaching.parity_fsm ();
      (Option.get (Bist_bench.Registry.find "x298")).circuit ();
    ]
  in
  List.iter
    (fun circuit ->
      let rng = Rng.create 11 in
      let seq =
        Tseq.random_binary rng ~width:(Netlist.num_inputs circuit) ~length:48
      in
      Alcotest.(check bool)
        (Netlist.circuit_name circuit ^ " lane 0 == Event_sim")
        true
        (packed_lane0_matches_event_sim circuit seq))
    circuits

(* The sequential/parallel crossover policy (Tune) *)

let test_tune_policy () =
  let t1 = Tune.create ~cores:1 () in
  Alcotest.(check int) "cores=1 never shards" 1
    (Tune.chunks t1 ~jobs:4 ~units:1_000_000);
  let tf = Tune.create ~min_units:0 () in
  Alcotest.(check int) "min_units=0 forces maximal sharding" 4
    (Tune.chunks tf ~jobs:4 ~units:3);
  let tm = Tune.create ~min_units:10 () in
  Alcotest.(check int) "fixed floor divides the work" 3
    (Tune.chunks tm ~jobs:8 ~units:35);
  Alcotest.(check int) "jobs=1 is always sequential" 1
    (Tune.chunks tf ~jobs:1 ~units:1_000_000);
  (* Measured crossover: record 1 µs/unit, so the 0.5 ms floor is 500
     units per shard. *)
  let t = Tune.create ~cores:4 () in
  Tune.record t ~units:1000 ~seconds:0.001;
  Alcotest.(check bool) "ns/unit learned" true
    (abs_float (Tune.ns_per_unit t -. 1000.) < 1e-6);
  Alcotest.(check int) "below the crossover" 1 (Tune.chunks t ~jobs:4 ~units:999);
  Alcotest.(check int) "just above the crossover" 2
    (Tune.chunks t ~jobs:4 ~units:1000);
  Alcotest.(check int) "large work caps at jobs" 4
    (Tune.chunks t ~jobs:4 ~units:1_000_000);
  (* EWMA: a second, slower measurement moves the estimate 30% of the
     way. *)
  Tune.record t ~units:1000 ~seconds:0.002;
  Alcotest.(check bool) "EWMA folds new measurements" true
    (abs_float (Tune.ns_per_unit t -. 1300.) < 1e-6);
  Tune.record t ~units:0 ~seconds:1.0;
  Alcotest.(check bool) "zero-unit records ignored" true
    (abs_float (Tune.ns_per_unit t -. 1300.) < 1e-6)

(* Dispatch amortization: task count is O(width), not O(chunks), and
   empty or sequential calls enqueue nothing. *)
let test_dispatch_task_count () =
  let base = Pool.dispatched_tasks () in
  ignore (Pool.map_chunks pool4 Fun.id (Array.init 10 Fun.id));
  Alcotest.(check int) "10 chunks on jobs=4: 3 tasks" (base + 3)
    (Pool.dispatched_tasks ());
  ignore (Pool.map_chunks pool4 Fun.id (Array.init 2 Fun.id));
  Alcotest.(check int) "2 chunks: 1 task" (base + 4) (Pool.dispatched_tasks ());
  ignore (Pool.map_chunks pool4 Fun.id [| 42 |]);
  ignore (Pool.map_chunks pool4 Fun.id ([||] : int array));
  ignore (Pool.map_chunks pool1 Fun.id (Array.init 10 Fun.id));
  Alcotest.(check int) "singleton/empty/sequential: no tasks" (base + 4)
    (Pool.dispatched_tasks ());
  (* Sharded detections: 3 ids forced over jobs=4 make 3 never-empty
     slices, hence 2 helper tasks beyond the caller. *)
  let f ids = Array.map (fun _ -> -1) ids in
  ignore
    (Shard.detections ~pool:pool4 ~tune:(Tune.create ~min_units:0 ()) ~size:4 ~f
       (Array.init 3 Fun.id));
  Alcotest.(check int) "3 slices on jobs=4: 2 tasks" (base + 6)
    (Pool.dispatched_tasks ());
  (* Below the crossover nothing is dispatched at all. *)
  ignore
    (Shard.detections ~pool:pool4 ~tune:(Tune.create ~min_units:max_int ())
       ~size:4 ~f (Array.init 3 Fun.id));
  Alcotest.(check int) "sequential crossover: no tasks" (base + 6)
    (Pool.dispatched_tasks ())

let suite =
  [
    Alcotest.test_case "shard partition boundaries" `Quick test_partition_boundaries;
    Alcotest.test_case "shard merge scatter" `Quick test_merge_scatter;
    Alcotest.test_case "shard empty universe" `Quick test_detections_empty_universe;
    Alcotest.test_case "pool map_chunks basics" `Quick test_map_chunks_basic;
    Alcotest.test_case "pool exception propagation" `Quick test_exception_from_worker;
    Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
    Alcotest.test_case "pool shutdown fallback" `Quick test_shutdown_falls_back;
    Alcotest.test_case "rng split across domains" `Quick test_rng_split_across_domains;
    Alcotest.test_case "rng chunk splits are width-independent" `Quick
      test_map_chunks_rng_width_independent;
    Alcotest.test_case "tune crossover policy" `Quick test_tune_policy;
    Alcotest.test_case "dispatch task count pinned" `Quick
      test_dispatch_task_count;
    fault_table_determinism;
    Alcotest.test_case "registry tables identical at jobs=4" `Slow
      test_registry_tables_identical;
    Alcotest.test_case "fsim targets with pool" `Quick test_fsim_targets_with_pool;
    Alcotest.test_case "campaign parallel identical" `Slow
      test_campaign_parallel_identical;
    test_packed_vs_event_random;
    Alcotest.test_case "packed vs event on known circuits" `Quick
      test_packed_vs_event_registry_and_teaching;
  ]
