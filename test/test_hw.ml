(* Suites for Bist_hw: memory, controller (including the controller ==
   Ops.expand equivalence property), LFSR, MISR, area, session. *)

module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module Memory = Bist_hw.Memory
module Controller = Bist_hw.Controller
module Lfsr = Bist_hw.Lfsr
module Misr = Bist_hw.Misr

let test_memory_load_read () =
  let m = Memory.create ~word_bits:3 ~depth:8 () in
  let s = Tseq.of_strings [ "001"; "110"; "101" ] in
  Memory.load_sequence_exn m s;
  Alcotest.(check int) "used" 3 (Memory.used_words m);
  Testutil.check_vec "word 1" (Vector.of_string "110") (Memory.read m 1);
  Alcotest.(check int) "load cycles" 3 (Memory.total_load_cycles m);
  Memory.load_sequence_exn m (Tseq.of_strings [ "111" ]);
  Alcotest.(check int) "cumulative load cycles" 4 (Memory.total_load_cycles m);
  Alcotest.(check int) "used after reload" 1 (Memory.used_words m)

let check_load_error name expected m s =
  match Memory.load_sequence m s with
  | Ok () -> Alcotest.failf "%s: expected Error" name
  | Error e ->
    Alcotest.(check string) name (Bist_hw.Error.to_string expected)
      (Bist_hw.Error.to_string e)

let test_memory_errors () =
  let m = Memory.create ~word_bits:3 ~depth:2 () in
  check_load_error "too long"
    (Bist_hw.Error.Sequence_too_long { length = 3; depth = 2 })
    m
    (Tseq.of_strings [ "000"; "000"; "000" ]);
  check_load_error "width"
    (Bist_hw.Error.Width_mismatch { expected = 3; got = 2 })
    m
    (Tseq.of_strings [ "00" ]);
  Alcotest.(check int) "failed load invalidates" 0 (Memory.used_words m);
  Memory.load_sequence_exn m (Tseq.of_strings [ "000" ]);
  Alcotest.check_raises "address"
    (Invalid_argument "Memory.read: address out of range") (fun () ->
      ignore (Memory.read m 1));
  Alcotest.check_raises "exn wrapper raises Error.Error"
    (Bist_hw.Error.Error (Bist_hw.Error.Width_mismatch { expected = 3; got = 2 }))
    (fun () -> Memory.load_sequence_exn m (Tseq.of_strings [ "00" ]))

let test_memory_clears_stale_words () =
  (* A shorter reload must not leave vectors of the previous sequence
     readable above the new length. *)
  let m = Memory.create ~word_bits:2 ~depth:4 () in
  Memory.load_sequence_exn m (Tseq.of_strings [ "11"; "10"; "01"; "00" ]);
  Memory.load_sequence_exn m (Tseq.of_strings [ "00" ]);
  Alcotest.(check int) "used" 1 (Memory.used_words m);
  for addr = 1 to 3 do
    Alcotest.(check bool)
      (Printf.sprintf "word %d cleared to X" addr)
      false
      (Vector.is_fully_specified (Memory.raw_word m addr))
  done

let test_memory_parity_detects () =
  let m = Memory.create ~ecc:Bist_hw.Ecc.Parity ~word_bits:4 ~depth:2 () in
  Memory.load_sequence_exn m (Tseq.of_strings [ "1010"; "0110" ]);
  (match Memory.read_checked m ~attempt:1 0 with
   | Ok w -> Testutil.check_vec "clean read" (Vector.of_string "1010") w
   | Error e -> Alcotest.failf "clean read flagged: %s" (Bist_hw.Error.to_string e));
  Memory.corrupt m ~word:1 (fun v ->
      Vector.set v 2 (match Vector.get v 2 with T.One -> T.Zero | _ -> T.One));
  (match Memory.read_checked m ~attempt:3 1 with
   | Ok _ -> Alcotest.fail "corrupted word not flagged"
   | Error (Bist_hw.Error.Parity_violation { word; attempt }) ->
     Alcotest.(check int) "word" 1 word;
     Alcotest.(check int) "attempt" 3 attempt
   | Error e -> Alcotest.failf "wrong error: %s" (Bist_hw.Error.to_string e));
  Alcotest.(check int) "raw read still works" 2
    (Tseq.length (Tseq.of_vectors [| Memory.read m 0; Memory.read m 1 |]))

let test_memory_hamming_corrects () =
  let m = Memory.create ~ecc:Bist_hw.Ecc.Hamming_sec ~word_bits:4 ~depth:1 () in
  Memory.load_sequence_exn m (Tseq.of_strings [ "1010" ]);
  Memory.corrupt m ~word:0 (fun v ->
      Vector.set v 3 (match Vector.get v 3 with T.One -> T.Zero | _ -> T.One));
  (match Memory.read_checked m ~attempt:1 0 with
   | Ok w -> Testutil.check_vec "single-bit error corrected" (Vector.of_string "1010") w
   | Error e -> Alcotest.failf "SEC flagged instead: %s" (Bist_hw.Error.to_string e));
  Alcotest.(check int) "correction counted" 1 (Memory.corrections m)

(* The central hardware property: the controller's emitted stream equals
   the software expansion, for random stored sequences and every n. *)
let test_controller_equals_expand =
  Testutil.qcheck
    (QCheck.Test.make ~name:"controller stream == Ops.expand" ~count:150
       QCheck.(pair (Testutil.seq ~width:5 ~max_len:9) (int_range 1 6))
       (fun (s, n) ->
         let m = Memory.create ~word_bits:5 ~depth:(Tseq.length s) () in
         Memory.load_sequence_exn m s;
         let c = Controller.start m ~n in
         Tseq.equal (Controller.emit_all c) (Bist_core.Ops.expand ~n s)))

let test_controller_cycle_count () =
  let m = Memory.create ~word_bits:2 ~depth:4 () in
  Memory.load_sequence_exn m (Tseq.of_strings [ "00"; "01"; "10" ]);
  let c = Controller.start m ~n:4 in
  Alcotest.(check int) "8nL cycles" (8 * 4 * 3) (Controller.total_cycles c);
  Alcotest.(check bool) "not finished" false (Controller.finished c);
  let emitted = Controller.emit_all c in
  Alcotest.(check int) "emitted all" 96 (Tseq.length emitted);
  Alcotest.(check bool) "finished" true (Controller.finished c)

let test_controller_stepwise () =
  (* Stepping one by one equals emit_all. *)
  let s = Tseq.of_strings [ "01"; "11" ] in
  let m = Memory.create ~word_bits:2 ~depth:2 () in
  Memory.load_sequence_exn m s;
  let c1 = Controller.start m ~n:2 in
  let c2 = Controller.start m ~n:2 in
  let manual =
    Array.init (Controller.total_cycles c1) (fun _ -> Controller.step c1)
  in
  Testutil.check_seq "stepwise == emit_all" (Tseq.of_vectors manual)
    (Controller.emit_all c2)

let test_lfsr_period () =
  (* Galois LFSR with a primitive polynomial has period 2^w - 1. *)
  List.iter
    (fun w ->
      let l = Lfsr.create ~width:w ~seed:1 () in
      let seen = Hashtbl.create 64 in
      let rec count n =
        let bits = List.init w (fun _ -> Lfsr.next_bit l) in
        if Hashtbl.mem seen bits || n > 1 lsl (w + 1) then n
        else begin
          Hashtbl.add seen bits ();
          count (n + 1)
        end
      in
      ignore (count 0);
      Alcotest.(check bool)
        (Printf.sprintf "width %d has long period" w)
        true
        (Hashtbl.length seen >= (1 lsl w) - w - 1))
    [ 3; 4; 5 ]

let test_lfsr_deterministic () =
  let a = Lfsr.create ~width:16 ~seed:0xACE1 () in
  let b = Lfsr.create ~width:16 ~seed:0xACE1 () in
  for _ = 1 to 100 do
    Alcotest.(check bool) "same bit" (Lfsr.next_bit a) (Lfsr.next_bit b)
  done

let test_lfsr_zero_seed () =
  let l = Lfsr.create ~width:8 ~seed:0 () in
  (* all-zero state would be stuck; creation must avoid it *)
  let any_one = ref false in
  for _ = 1 to 16 do
    if Lfsr.next_bit l then any_one := true
  done;
  Alcotest.(check bool) "not stuck at zero" true !any_one

let test_misr_distinguishes () =
  let a = Misr.create ~width:3 in
  let b = Misr.create ~width:3 in
  let feed m strings = List.iter (fun s -> Misr.compact m (Vector.of_string s)) strings in
  feed a [ "000"; "101"; "110" ];
  feed b [ "000"; "111"; "110" ];
  Alcotest.(check bool) "different responses, different signatures" true
    (Misr.signature a <> Misr.signature b);
  Alcotest.(check bool) "clean" false (Misr.contaminated a)

let test_misr_deterministic () =
  let run () =
    let m = Misr.create ~width:4 in
    List.iter (fun s -> Misr.compact m (Vector.of_string s)) [ "0001"; "1010"; "1111" ];
    Misr.signature m
  in
  Alcotest.(check int) "repeatable" (run ()) (run ())

let test_misr_x_contamination () =
  let m = Misr.create ~width:2 in
  Misr.compact m (Vector.of_string "1x");
  Alcotest.(check bool) "contaminated" true (Misr.contaminated m);
  Misr.reset m;
  Alcotest.(check bool) "reset clears" false (Misr.contaminated m);
  Alcotest.(check int) "reset zeroes" 0 (Misr.signature m)

let test_area_monotone () =
  let base = Bist_hw.Area.estimate ~num_inputs:8 ~max_seq_len:16 ~n:4 () in
  let bigger = Bist_hw.Area.estimate ~num_inputs:8 ~max_seq_len:64 ~n:4 () in
  Alcotest.(check bool) "memory grows" true
    (bigger.Bist_hw.Area.memory_bits > base.Bist_hw.Area.memory_bits);
  Alcotest.(check bool) "counter grows" true
    (bigger.address_counter_bits > base.address_counter_bits);
  Alcotest.(check int) "memory bits exact" (16 * 8) base.memory_bits

let test_session_report () =
  let circuit = Bist_bench.S27.circuit () in
  let seqs = [ Tseq.of_strings [ "1001"; "0000" ]; Tseq.of_strings [ "1011" ] ] in
  let r = Bist_hw.Session.run_exn ~n:2 circuit seqs in
  Alcotest.(check int) "memory = longest" 2 r.Bist_hw.Session.memory_words;
  Alcotest.(check int) "load = total stored" 3 r.total_load_cycles;
  Alcotest.(check int) "at speed = 8n * stored" (16 * 3) r.total_at_speed_cycles;
  Alcotest.(check int) "two sequences" 2 (List.length r.per_sequence);
  List.iter
    (fun (s : Bist_hw.Session.sequence_report) ->
      Alcotest.(check int) "applied = 16 * stored" (16 * s.stored_length) s.applied_length)
    r.per_sequence

let test_session_signature_sensitivity () =
  (* The fault-free signature differs from a faulty machine's signature
     for a fault the expanded sequence detects and whose response is
     X-clean... at minimum the report must be reproducible. *)
  let circuit = Bist_bench.S27.circuit () in
  let seqs = [ Tseq.of_strings [ "1001"; "0000" ] ] in
  let a = Bist_hw.Session.run_exn ~n:2 circuit seqs in
  let b = Bist_hw.Session.run_exn ~n:2 circuit seqs in
  List.iter2
    (fun (x : Bist_hw.Session.sequence_report) y ->
      Alcotest.(check int) "same signature" x.signature y.Bist_hw.Session.signature)
    a.per_sequence b.per_sequence

(* Sync *)

let test_sync_finds_sequence () =
  List.iter
    (fun circuit ->
      let rng = Bist_util.Rng.create 4 in
      match Bist_hw.Sync.find_sequence ~rng circuit with
      | None ->
        Alcotest.fail
          (Bist_circuit.Netlist.circuit_name circuit ^ ": no sync sequence")
      | Some seq ->
        Alcotest.(check bool) "claims verified" true
          (Bist_hw.Sync.synchronized circuit seq))
    [ Bist_bench.Teaching.counter3 (); Bist_bench.Teaching.shift4 ();
      Bist_bench.S27.circuit () ]

let test_sync_impossible () =
  (* The XOR self-loop can never leave X. *)
  let c =
    Bist_circuit.Bench_parser.parse_string ~name:"xloop"
      "INPUT(a)\nOUTPUT(p)\nq = DFF(d)\nd = XOR(q, a)\np = BUF(q)\n"
  in
  let rng = Bist_util.Rng.create 4 in
  Alcotest.(check bool) "no sequence exists" true
    (Bist_hw.Sync.find_sequence ~attempts:8 ~max_length:16 ~rng c = None)

let test_session_with_sync_clean_signatures () =
  let circuit = Bist_bench.S27.circuit () in
  let rng = Bist_util.Rng.create 4 in
  let sync = Option.get (Bist_hw.Sync.find_sequence ~rng circuit) in
  let seqs = [ Tseq.of_strings [ "1001"; "0000" ] ] in
  let r = Bist_hw.Session.run_exn ~sync ~n:2 circuit seqs in
  List.iter
    (fun (s : Bist_hw.Session.sequence_report) ->
      Alcotest.(check bool) "signature valid with sync" true s.signature_valid)
    r.Bist_hw.Session.per_sequence;
  Alcotest.(check int) "sync cycles reported" (Tseq.length sync)
    r.sync_cycles_per_sequence;
  (* and without sync, the same session is contaminated *)
  let r0 = Bist_hw.Session.run_exn ~n:2 circuit seqs in
  List.iter
    (fun (s : Bist_hw.Session.sequence_report) ->
      Alcotest.(check bool) "contaminated without sync" false s.signature_valid)
    r0.per_sequence

(* Defense / error-path behavior of the session itself. *)

let test_session_input_errors () =
  let circuit = Bist_bench.S27.circuit () in
  (match Bist_hw.Session.run ~n:2 circuit [] with
   | Error Bist_hw.Error.No_sequences -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Bist_hw.Error.to_string e)
   | Ok _ -> Alcotest.fail "empty list accepted");
  (match Bist_hw.Session.run ~n:2 circuit [ Tseq.empty 4 ] with
   | Error Bist_hw.Error.Empty_sequence -> ()
   | Error e -> Alcotest.failf "wrong error: %s" (Bist_hw.Error.to_string e)
   | Ok _ -> Alcotest.fail "empty sequence accepted");
  match Bist_hw.Session.run ~n:2 circuit [ Tseq.of_strings [ "10" ] ] with
  | Error (Bist_hw.Error.Width_mismatch { expected = 4; got = 2 }) -> ()
  | Error e -> Alcotest.failf "wrong error: %s" (Bist_hw.Error.to_string e)
  | Ok _ -> Alcotest.fail "narrow sequence accepted"

let test_session_recovers_from_transient () =
  let circuit = Bist_bench.S27.circuit () in
  let seqs = [ Tseq.of_strings [ "1001"; "0000" ] ] in
  let injector =
    Bist_hw.Injector.create
      (Bist_hw.Injector.Mem_flip { word = 0; bit = 1; phase = `Stored })
  in
  let clean = Bist_hw.Session.run_exn ~n:2 circuit seqs in
  let r = Bist_hw.Session.run_exn ~injector ~n:2 circuit seqs in
  Alcotest.(check bool) "complete" true r.Bist_hw.Session.complete;
  Alcotest.(check int) "one reload" 1 r.total_reloads;
  List.iter2
    (fun (c : Bist_hw.Session.sequence_report) (s : Bist_hw.Session.sequence_report) ->
      (match s.status with
       | Bist_hw.Session.Recovered -> ()
       | _ -> Alcotest.fail "expected Recovered");
      Alcotest.(check int) "signature matches clean run" c.signature s.signature;
      Alcotest.(check bool) "parity fired" true (s.detections <> []))
    clean.per_sequence r.per_sequence

let test_session_degrades_on_permanent () =
  let circuit = Bist_bench.S27.circuit () in
  let seqs = [ Tseq.of_strings [ "1001"; "0000" ] ] in
  let stuck_value =
    (* negation of the stored bit, so the parity code must fire *)
    match Vector.get (Vector.of_string "1001") 0 with T.One -> false | _ -> true
  in
  let injector =
    Bist_hw.Injector.create
      (Bist_hw.Injector.Mem_stuck { word = 0; bit = 0; value = stuck_value })
  in
  let r = Bist_hw.Session.run_exn ~injector ~n:2 circuit seqs in
  Alcotest.(check bool) "incomplete" false r.Bist_hw.Session.complete;
  Alcotest.(check int) "budget consumed"
    (Bist_hw.Session.default_defense.max_reloads + 1)
    (List.hd r.per_sequence).attempts;
  match (List.hd r.per_sequence).status with
  | Bist_hw.Session.Degraded (Bist_hw.Error.Parity_violation _) -> ()
  | Bist_hw.Session.Degraded e ->
    Alcotest.failf "degraded with wrong error: %s" (Bist_hw.Error.to_string e)
  | _ -> Alcotest.fail "expected Degraded"

let test_session_undefended_misses_corruption () =
  (* Same transient fault, parity disarmed: the session reports Clean
     but silently applied a different test than the clean run. *)
  let circuit = Bist_bench.S27.circuit () in
  let rng = Bist_util.Rng.create 4 in
  let sync = Option.get (Bist_hw.Sync.find_sequence ~rng circuit) in
  let seqs = [ Tseq.of_strings [ "1001"; "0000"; "1111" ] ] in
  let injector =
    Bist_hw.Injector.create
      (Bist_hw.Injector.Mem_flip { word = 1; bit = 2; phase = `Stored })
  in
  let defense = Bist_hw.Session.undefended in
  let clean = Bist_hw.Session.run_exn ~sync ~defense ~capture:true ~n:2 circuit seqs in
  let r =
    Bist_hw.Session.run_exn ~sync ~defense ~injector ~capture:true ~n:2 circuit seqs
  in
  List.iter
    (fun (s : Bist_hw.Session.sequence_report) ->
      match s.status with
      | Bist_hw.Session.Clean -> ()
      | _ -> Alcotest.fail "undefended session should not notice anything")
    r.per_sequence;
  Alcotest.(check bool) "applied stream silently wrong" false
    (Tseq.equal
       (Option.get (List.hd clean.per_sequence).applied)
       (Option.get (List.hd r.per_sequence).applied))

let test_area_ecc_overhead () =
  let bare = Bist_hw.Area.estimate ~num_inputs:8 ~max_seq_len:16 ~n:4 () in
  let parity =
    Bist_hw.Area.estimate ~ecc:Bist_hw.Ecc.Parity ~num_inputs:8 ~max_seq_len:16 ~n:4 ()
  in
  let hamming =
    Bist_hw.Area.estimate ~ecc:Bist_hw.Ecc.Hamming_sec ~num_inputs:8 ~max_seq_len:16
      ~n:4 ()
  in
  Alcotest.(check int) "no ecc bits without ecc" 0 bare.Bist_hw.Area.ecc_bits;
  Alcotest.(check int) "one parity bit per word" 16 parity.Bist_hw.Area.ecc_bits;
  Alcotest.(check int) "hamming check bits per word"
    (16 * Bist_hw.Ecc.check_bits Bist_hw.Ecc.Hamming_sec ~data_bits:8)
    hamming.Bist_hw.Area.ecc_bits;
  Alcotest.(check bool) "data bits unchanged" true
    (bare.memory_bits = parity.memory_bits && parity.memory_bits = hamming.memory_bits);
  Alcotest.(check bool) "gate cost ordered" true
    (bare.gate_equivalents < parity.gate_equivalents
    && parity.gate_equivalents < hamming.gate_equivalents)

let suite =
  [
    Alcotest.test_case "memory load/read" `Quick test_memory_load_read;
    Alcotest.test_case "sync finds sequence" `Quick test_sync_finds_sequence;
    Alcotest.test_case "sync impossible" `Quick test_sync_impossible;
    Alcotest.test_case "session sync signatures" `Quick
      test_session_with_sync_clean_signatures;
    Alcotest.test_case "memory errors" `Quick test_memory_errors;
    Alcotest.test_case "memory clears stale words" `Quick test_memory_clears_stale_words;
    Alcotest.test_case "memory parity detects" `Quick test_memory_parity_detects;
    Alcotest.test_case "memory hamming corrects" `Quick test_memory_hamming_corrects;
    test_controller_equals_expand;
    Alcotest.test_case "controller cycles" `Quick test_controller_cycle_count;
    Alcotest.test_case "controller stepwise" `Quick test_controller_stepwise;
    Alcotest.test_case "lfsr period" `Quick test_lfsr_period;
    Alcotest.test_case "lfsr deterministic" `Quick test_lfsr_deterministic;
    Alcotest.test_case "lfsr zero seed" `Quick test_lfsr_zero_seed;
    Alcotest.test_case "misr distinguishes" `Quick test_misr_distinguishes;
    Alcotest.test_case "misr deterministic" `Quick test_misr_deterministic;
    Alcotest.test_case "misr X contamination" `Quick test_misr_x_contamination;
    Alcotest.test_case "area monotone" `Quick test_area_monotone;
    Alcotest.test_case "session report" `Quick test_session_report;
    Alcotest.test_case "session reproducible" `Quick test_session_signature_sensitivity;
    Alcotest.test_case "session input errors" `Quick test_session_input_errors;
    Alcotest.test_case "session recovers transient" `Quick
      test_session_recovers_from_transient;
    Alcotest.test_case "session degrades on permanent" `Quick
      test_session_degrades_on_permanent;
    Alcotest.test_case "session undefended escape" `Quick
      test_session_undefended_misses_corruption;
    Alcotest.test_case "area ecc overhead" `Quick test_area_ecc_overhead;
  ]
