(* The observability sink (lib/obs) and the typed-error bugfixes that
   shipped with it: Seq_io.Parse_error, Procedure2.Undetected and the
   BIST_JOBS / --jobs validation in the domain pool. *)

module Obs = Bist_obs.Obs
module Json = Bist_obs.Json_check
module Metrics = Bist_obs.Metrics
module Pool = Bist_parallel.Pool
module Seq_io = Bist_harness.Seq_io

(* A deterministic clock: every reading is one second after the last,
   starting at 0. Obs.create consumes the first tick for the sink
   epoch, so span timestamps are small integers. *)
let fake_clock () =
  let now = ref (-1.0) in
  fun () ->
    now := !now +. 1.0;
    !now

let json_exn text =
  match Json.parse text with
  | Ok v -> v
  | Error msg -> Alcotest.failf "trace JSON rejected: %s" msg

let events_exn json =
  match Json.member "traceEvents" json with
  | Some (Json.List events) -> events
  | _ -> Alcotest.fail "missing traceEvents array"

let event_field event name =
  match Json.member name event with
  | Some v -> v
  | None -> Alcotest.failf "event missing %S" name

let number = function
  | Json.Number f -> f
  | _ -> Alcotest.fail "expected a JSON number"

let find_event events name =
  match
    List.find_opt
      (fun e -> event_field e "name" = Json.String name)
      events
  with
  | Some e -> e
  | None -> Alcotest.failf "no trace event named %S" name

(* Spans *)

let test_span_nesting () =
  let obs = Obs.create ~clock:(fake_clock ()) ~trace:true () in
  let result =
    Obs.span obs "outer" (fun () ->
        ignore (Obs.span obs "inner" (fun () -> 7));
        42)
  in
  Alcotest.(check int) "span returns the body's value" 42 result;
  let events = events_exn (json_exn (Obs.trace_json obs)) in
  Alcotest.(check int) "two events" 2 (List.length events);
  let outer = find_event events "outer" and inner = find_event events "inner" in
  let ts e = number (event_field e "ts") and dur e = number (event_field e "dur") in
  (* Clock ticks: outer in = 1, inner in = 2, inner out = 3, outer
     out = 4 (seconds), emitted as microseconds since the sink epoch. *)
  Alcotest.(check (float 1e-3)) "outer ts" 1e6 (ts outer);
  Alcotest.(check (float 1e-3)) "outer dur" 3e6 (dur outer);
  Alcotest.(check (float 1e-3)) "inner ts" 2e6 (ts inner);
  Alcotest.(check (float 1e-3)) "inner dur" 1e6 (dur inner);
  Alcotest.(check bool) "inner nested inside outer" true
    (ts inner >= ts outer && ts inner +. dur inner <= ts outer +. dur outer);
  Alcotest.(check (list (pair string (float 1e-9))))
    "span_seconds totals" [ ("inner", 1.0); ("outer", 3.0) ]
    (Obs.span_seconds obs)

let test_span_exception () =
  let obs = Obs.create ~clock:(fake_clock ()) ~trace:true () in
  (try
     Obs.span obs "failing" (fun () -> failwith "boom")
   with Failure msg -> Alcotest.(check string) "re-raised" "boom" msg);
  Alcotest.(check (list (pair string (float 1e-9))))
    "failed span still timed" [ ("failing", 1.0) ]
    (Obs.span_seconds obs);
  let events = events_exn (json_exn (Obs.trace_json obs)) in
  let args = event_field (find_event events "failing") "args" in
  match Json.member "error" args with
  | Some (Json.String msg) ->
    Alcotest.(check bool) "error arg mentions the exception" true
      (String.length msg > 0)
  | _ -> Alcotest.fail "failing span has no error arg"

let test_args_escaping () =
  let nasty = "quote\" backslash\\ newline\n tab\t control\x01" in
  let obs = Obs.create ~trace:true () in
  Obs.span obs "escaped" ~args:(fun () -> [ ("k", nasty) ]) (fun () -> ());
  let events = events_exn (json_exn (Obs.trace_json obs)) in
  let args = event_field (find_event events "escaped") "args" in
  match Json.member "k" args with
  | Some (Json.String round_tripped) ->
    Alcotest.(check string) "arg survives JSON round-trip" nasty round_tripped
  | _ -> Alcotest.fail "missing arg k"

let test_null_sink () =
  let ran = ref 0 in
  let v = Obs.span Obs.null "anything" (fun () -> incr ran; 9) in
  Alcotest.(check int) "null span runs the body once" 1 !ran;
  Alcotest.(check int) "null span returns the value" 9 v;
  Obs.count Obs.null "c";
  Obs.gauge Obs.null "g" 1.0;
  Obs.observe Obs.null "h" 1.0;
  Alcotest.(check bool) "null is disabled" false (Obs.enabled Obs.null);
  Alcotest.(check int) "no trace events" 0 (Obs.trace_events Obs.null);
  Alcotest.(check (list (pair string (float 0.)))) "no span totals" []
    (Obs.span_seconds Obs.null);
  Alcotest.(check string) "empty summary" "" (Obs.summary Obs.null);
  (* Even the disabled sink's trace document is valid Chrome JSON. *)
  let events = events_exn (json_exn (Obs.trace_json Obs.null)) in
  Alcotest.(check int) "empty traceEvents" 0 (List.length events)

let test_untraced_sink () =
  (* Metrics-only sink (the --stats path): spans aggregate, no events. *)
  let obs = Obs.create ~clock:(fake_clock ()) () in
  Obs.span obs "phase" (fun () -> ());
  Obs.span obs "phase" (fun () -> ());
  Alcotest.(check int) "no events buffered" 0 (Obs.trace_events obs);
  Alcotest.(check (list (pair string (float 1e-9))))
    "durations still aggregated" [ ("phase", 2.0) ]
    (Obs.span_seconds obs);
  Alcotest.(check bool) "summary mentions the phase" true
    (String.length (Obs.summary obs) > 0)

(* Metrics *)

let test_counter_math () =
  let m = Metrics.create () in
  Metrics.incr m "hits";
  Metrics.incr m ~by:5 "hits";
  Metrics.incr m "other";
  Alcotest.(check (option int)) "accumulates" (Some 6) (Metrics.counter m "hits");
  Alcotest.(check (option int)) "absent name" None (Metrics.counter m "nope");
  Alcotest.(check (list (pair string int))) "sorted listing"
    [ ("hits", 6); ("other", 1) ] (Metrics.counters m);
  Alcotest.check_raises "negative increment rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr m ~by:(-1) "hits")

let test_gauge_latest_wins () =
  let m = Metrics.create () in
  Metrics.set_gauge m "depth" 3.0;
  Metrics.set_gauge m "depth" 7.5;
  Alcotest.(check (option (float 0.))) "latest value" (Some 7.5)
    (Metrics.gauge m "depth")

let test_histogram_math () =
  let m = Metrics.create () in
  let samples = [ 5e-7; 5e-7; 0.005; 2.0; 20.0 ] in
  List.iter (Metrics.observe m "dur") samples;
  match Metrics.histogram m "dur" with
  | None -> Alcotest.fail "histogram missing"
  | Some h ->
    Alcotest.(check int) "count" 5 h.Metrics.count;
    Alcotest.(check (float 1e-9)) "sum" 22.005001 h.Metrics.sum;
    Alcotest.(check (float 1e-9)) "min" 5e-7 h.Metrics.min;
    Alcotest.(check (float 1e-9)) "max" 20.0 h.Metrics.max;
    Alcotest.(check (float 1e-9)) "mean" (22.005001 /. 5.0) (Metrics.mean h);
    let bucket bound =
      match List.assoc_opt bound h.Metrics.buckets with
      | Some n -> n
      | None -> Alcotest.failf "no bucket with bound %g" bound
    in
    (* Each sample lands in exactly one decade bucket. *)
    Alcotest.(check int) "<= 1e-6" 2 (bucket 1e-6);
    Alcotest.(check int) "<= 1e-2" 1 (bucket 1e-2);
    Alcotest.(check int) "<= 10" 1 (bucket 10.0);
    Alcotest.(check int) "overflow" 1 (bucket infinity);
    Alcotest.(check int) "total across buckets" 5
      (List.fold_left (fun acc (_, n) -> acc + n) 0 h.Metrics.buckets)

(* Bugfix: Seq_io raises a typed, line-numbered Parse_error. *)

let check_parse_error ~line ~substr text =
  match Seq_io.parse text with
  | _ -> Alcotest.failf "parse accepted %S" text
  | exception Seq_io.Parse_error { line = l; message } ->
    Alcotest.(check int) "line number" line l;
    let mentions needle hay =
      let nl = String.length needle and hl = String.length hay in
      let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
      go 0
    in
    Alcotest.(check bool)
      (Printf.sprintf "message %S mentions %S" message substr)
      true (mentions substr message)

let test_seq_io_errors () =
  check_parse_error ~line:2 ~substr:"'b'" "01\nbad\n";
  check_parse_error ~line:0 ~substr:"no vectors" "# only a comment\n\n";
  check_parse_error ~line:3 ~substr:"expected 2" "01\n10\n101\n";
  (* The registered printer renders file context, not a bare Failure. *)
  (match Seq_io.parse "0\n1\nx2\n" with
  | _ -> Alcotest.fail "accepted bad vector"
  | exception e ->
    Alcotest.(check string) "printer output"
      "sequence parse error at line 3: Ternary.of_char: '2'"
      (Printexc.to_string e));
  (* Good inputs still parse: comments, blanks, X symbols. *)
  let seq = Seq_io.parse "# header\n01\nx1  # trailing\n\n" in
  Alcotest.(check int) "two vectors" 2 (Bist_logic.Tseq.length seq)

(* Bugfix: Procedure 2 gives up with a typed error naming the fault. *)

let test_procedure2_undetected () =
  let circuit =
    Bist_circuit.Bench_parser.parse_string ~name:"const"
      "INPUT(a)\nzero = CONST0\ny = AND(a, zero)\nOUTPUT(y)\n"
  in
  (* y is constantly 0, so y stuck-at-0 is undetectable: no udet is
     valid and Procedure 2 must fail with the fault's name, not a bare
     Failure. *)
  let fault =
    Bist_fault.Fault.output_stuck
      (Bist_circuit.Netlist.find_exn circuit "y")
      Bist_logic.Ternary.Zero
  in
  let t0 = Seq_io.parse "0\n1\n1\n0\n" in
  let rng = Bist_util.Rng.create 1 in
  match
    Bist_core.Procedure2.find ~rng ~n:2 ~t0 ~udet:1 circuit fault
  with
  | _ -> Alcotest.fail "undetectable fault reported as found"
  | exception Bist_core.Procedure2.Undetected { fault = name; udet } ->
    Alcotest.(check int) "udet echoed" 1 udet;
    Alcotest.(check string) "fault named" "y/0" name

let test_procedure2_undetected_counted () =
  let circuit =
    Bist_circuit.Bench_parser.parse_string ~name:"const"
      "INPUT(a)\nzero = CONST0\ny = AND(a, zero)\nOUTPUT(y)\n"
  in
  let fault =
    Bist_fault.Fault.output_stuck
      (Bist_circuit.Netlist.find_exn circuit "y")
      Bist_logic.Ternary.Zero
  in
  let t0 = Seq_io.parse "0\n1\n" in
  let obs = Obs.create () in
  (match
     Bist_core.Procedure2.find ~obs ~rng:(Bist_util.Rng.create 1) ~n:2 ~t0
       ~udet:0 circuit fault
   with
  | _ -> Alcotest.fail "undetectable fault reported as found"
  | exception Bist_core.Procedure2.Undetected _ -> ());
  match Obs.metrics obs with
  | None -> Alcotest.fail "enabled sink has metrics"
  | Some m ->
    Alcotest.(check (option int)) "failure counted" (Some 1)
      (Metrics.counter m "proc2.undetected")

(* Bugfix: BIST_JOBS / --jobs validation. *)

let test_jobs_env_validation () =
  let check label expected s =
    Alcotest.(check (option int)) label expected (Pool.jobs_of_env_string s)
  in
  check "garbage rejected" None "abc";
  check "empty rejected" None "";
  check "zero is sequential" None "0";
  check "negative rejected" None "-3";
  check "one is sequential" None "1";
  check "two accepted" (Some 2) "2";
  check "plain width accepted" (Some 4) "4";
  check "huge width clamped" (Some Pool.max_jobs) "2000";
  check "max itself accepted" (Some Pool.max_jobs)
    (string_of_int Pool.max_jobs)

let test_jobs_cli_validation () =
  let v = Pool.validate_jobs ~source:"--jobs" in
  Alcotest.(check int) "auto passes through" 0 (v 0);
  Alcotest.(check int) "in-range passes through" 4 (v 4);
  Alcotest.(check int) "negative falls back to auto" 0 (v (-2));
  Alcotest.(check int) "oversized clamped" Pool.max_jobs (v 5000)

(* Integration: a traced pipeline run produces a valid document whose
   span names cover generation, compaction and the parallel shards. *)

let test_pipeline_trace () =
  let entry = Bist_bench.Registry.s27 in
  let universe = Bist_fault.Universe.collapsed (entry.circuit ()) in
  let obs = Obs.create ~trace:true () in
  let pool = Pool.create ~jobs:2 () in
  let rng = Bist_util.Rng.create 3 in
  let t0, _ = Bist_tgen.Engine.generate ~obs ~pool ~rng universe in
  let _, _ = Bist_tgen.Compaction.compact ~obs ~pool universe t0 in
  Pool.shutdown pool;
  let events = events_exn (json_exn (Obs.trace_json obs)) in
  List.iter
    (fun name -> ignore (find_event events name))
    [ "engine.selection"; "compaction.baseline"; "compaction.pass"; "fsim.shard" ];
  (* Every event has the mandatory Chrome trace fields. *)
  List.iter
    (fun e ->
      ignore (event_field e "ph");
      ignore (number (event_field e "ts"));
      ignore (number (event_field e "dur"));
      ignore (number (event_field e "tid")))
    events

let test_obs_neutral () =
  (* The instrumentation must not perturb results: the fault table is
     bit-identical whether the sink is enabled, tracing, or null. *)
  let entry = Bist_bench.Registry.s27 in
  let circuit = entry.circuit () in
  let universe = Bist_fault.Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in
  let module Ft = Bist_fault.Fault_table in
  let plain = Ft.compute universe t0 in
  let traced = Ft.compute ~obs:(Obs.create ~trace:true ()) universe t0 in
  Alcotest.(check bool) "detected sets equal" true
    (Bist_util.Bitset.equal (Ft.detected plain) (Ft.detected traced));
  for id = 0 to Bist_fault.Universe.size universe - 1 do
    Alcotest.(check (option int))
      (Printf.sprintf "udet of fault %d" id)
      (Ft.udet plain id) (Ft.udet traced id)
  done

(* Json_check itself: accepts RFC 8259 shapes, rejects near-JSON. *)

let test_json_check () =
  let ok s = match Json.parse s with
    | Ok _ -> ()
    | Error m -> Alcotest.failf "rejected %S: %s" s m
  and bad s = match Json.parse s with
    | Ok _ -> Alcotest.failf "accepted %S" s
    | Error _ -> ()
  in
  ok {|{"a": [1, -2.5e3, true, false, null], "b": "x\n\"\\A"}|};
  ok "  [ ]  ";
  ok {|"lone string"|};
  bad "{";
  bad "[1,]";
  bad "{\"a\": 1,}";
  bad "[1] trailing";
  bad "'single'";
  bad "{\"a\" 1}";
  match Json.parse "{\"u\": \"\\u0041\"}" with
  | Ok j ->
    Alcotest.(check bool) "unicode escape decodes" true
      (Json.member "u" j = Some (Json.String "A"))
  | Error m -> Alcotest.failf "unicode escape rejected: %s" m

let suite =
  [
    Alcotest.test_case "span nesting and timestamps" `Quick test_span_nesting;
    Alcotest.test_case "span records and re-raises exceptions" `Quick
      test_span_exception;
    Alcotest.test_case "trace args are JSON-escaped" `Quick test_args_escaping;
    Alcotest.test_case "null sink is a no-op" `Quick test_null_sink;
    Alcotest.test_case "metrics-only sink aggregates without events" `Quick
      test_untraced_sink;
    Alcotest.test_case "counter math" `Quick test_counter_math;
    Alcotest.test_case "gauge keeps the latest value" `Quick
      test_gauge_latest_wins;
    Alcotest.test_case "histogram count/sum/extrema/buckets" `Quick
      test_histogram_math;
    Alcotest.test_case "Seq_io reports typed line-numbered errors" `Quick
      test_seq_io_errors;
    Alcotest.test_case "Procedure 2 names the undetected fault" `Quick
      test_procedure2_undetected;
    Alcotest.test_case "Procedure 2 failure is counted in obs" `Quick
      test_procedure2_undetected_counted;
    Alcotest.test_case "BIST_JOBS strings are validated" `Quick
      test_jobs_env_validation;
    Alcotest.test_case "--jobs values are validated" `Quick
      test_jobs_cli_validation;
    Alcotest.test_case "traced pipeline emits a valid span set" `Quick
      test_pipeline_trace;
    Alcotest.test_case "instrumentation leaves fault tables bit-identical"
      `Quick test_obs_neutral;
    Alcotest.test_case "Json_check accepts JSON and rejects near-JSON" `Quick
      test_json_check;
  ]
