(* Suites for Bist_circuit: Gate, Bench_parser, Builder, Netlist, Stats. *)

module Gate = Bist_circuit.Gate
module Netlist = Bist_circuit.Netlist
module Parser = Bist_circuit.Bench_parser
module T = Bist_logic.Ternary

let test_gate_eval () =
  let chk = Alcotest.check Testutil.ternary_testable in
  chk "and3" T.Zero (Gate.eval Gate.And [| T.One; T.Zero; T.X |]);
  chk "and3 X" T.X (Gate.eval Gate.And [| T.One; T.One; T.X |]);
  chk "nand" T.One (Gate.eval Gate.Nand [| T.Zero; T.X |]);
  chk "nor" T.Zero (Gate.eval Gate.Nor [| T.One; T.X |]);
  chk "xor3" T.One (Gate.eval Gate.Xor [| T.One; T.One; T.One |]);
  chk "xnor" T.One (Gate.eval Gate.Xnor [| T.One; T.One |]);
  chk "buf" T.X (Gate.eval Gate.Buf [| T.X |]);
  chk "const0" T.Zero (Gate.eval Gate.Const0 [||]);
  chk "const1" T.One (Gate.eval Gate.Const1 [||])

let test_gate_arity () =
  Alcotest.(check bool) "not takes 1" true (Gate.arity_ok Gate.Not 1);
  Alcotest.(check bool) "not rejects 2" false (Gate.arity_ok Gate.Not 2);
  Alcotest.(check bool) "and rejects 1" false (Gate.arity_ok Gate.And 1);
  Alcotest.(check bool) "and takes 4" true (Gate.arity_ok Gate.And 4);
  Alcotest.(check bool) "dff takes 1" true (Gate.arity_ok Gate.Dff 1)

(* eval and eval_packed must agree on every lane. *)
let test_gate_eval_consistency =
  let kinds = [ Gate.Buf; Gate.Not; Gate.And; Gate.Nand; Gate.Or; Gate.Nor; Gate.Xor; Gate.Xnor ] in
  let gen =
    QCheck.Gen.(
      oneofl kinds >>= fun kind ->
      (if Gate.arity_ok kind 1 then return 1 else int_range 2 4) >>= fun k ->
      list_size (return k) (list_size (return 8) Testutil.ternary_gen) >>= fun inputs ->
      return (kind, inputs))
  in
  Testutil.qcheck
    (QCheck.Test.make ~name:"Gate.eval_packed agrees with Gate.eval" ~count:300
       (QCheck.make gen)
       (fun (kind, inputs) ->
         let packed =
           Array.of_list
             (List.map
                (fun lanes ->
                  List.fold_left
                    (fun (w, i) v -> (Bist_logic.Packed.set w i v, i + 1))
                    (Bist_logic.Packed.all_x, 0) lanes
                  |> fst)
                inputs)
         in
         let word = Gate.eval_packed kind packed in
         List.for_all
           (fun lane ->
             let scalar =
               Gate.eval kind (Array.of_list (List.map (fun l -> List.nth l lane) inputs))
             in
             T.equal scalar (Bist_logic.Packed.get word lane))
           (List.init 8 Fun.id)))

let test_gate_names () =
  Alcotest.(check (option bool)) "BUFF accepted" (Some true)
    (Option.map (fun k -> k = Gate.Buf) (Gate.kind_of_name "BUFF"));
  Alcotest.(check (option bool)) "case-insensitive" (Some true)
    (Option.map (fun k -> k = Gate.Nand) (Gate.kind_of_name "nand"));
  Alcotest.(check bool) "unknown" true (Gate.kind_of_name "FOO" = None)

(* Parser *)

let test_parse_s27 () =
  let c = Bist_bench.S27.circuit () in
  Alcotest.(check int) "inputs" 4 (Netlist.num_inputs c);
  Alcotest.(check int) "outputs" 1 (Netlist.num_outputs c);
  Alcotest.(check int) "dffs" 3 (Netlist.num_dffs c);
  Alcotest.(check int) "gates" 10 (Netlist.num_gates c);
  Alcotest.(check string) "PO name" "G17" (Netlist.name c (Netlist.outputs c).(0))

let test_parse_roundtrip () =
  let c = Bist_bench.S27.circuit () in
  let text = Bist_circuit.Bench_writer.to_string c in
  let c2 = Parser.parse_string ~name:"s27" text in
  Alcotest.(check int) "same size" (Netlist.size c) (Netlist.size c2);
  for n = 0 to Netlist.size c - 1 do
    let n2 = Netlist.find_exn c2 (Netlist.name c n) in
    Alcotest.(check bool) "same kind" true (Netlist.kind c n = Netlist.kind c2 n2);
    Alcotest.(check (list string)) "same fanins"
      (Array.to_list (Array.map (Netlist.name c) (Netlist.fanins c n)))
      (Array.to_list (Array.map (Netlist.name c2) (Netlist.fanins c2 n2)))
  done

(* Writer/parser round-trip over a circuit that uses every Gate.kind,
   spelled with the BUFF alias and bare/argful CONST forms on the way
   in. The reparse of the written text must reproduce kinds and fanins
   exactly (canonical spellings are fine). *)
let test_roundtrip_all_kinds () =
  let c =
    Parser.parse_string ~name:"kinds"
      "INPUT(a)\nINPUT(b)\nOUTPUT(y)\nOUTPUT(q)\n\
       zero = CONST0\none = CONST1()\n\
       bf = BUFF(a)\nnt = NOT(b)\n\
       an = AND(bf, nt)\nna = NAND(a, b)\n\
       orr = OR(an, zero)\nno = NOR(na, one)\n\
       xo = XOR(orr, no)\nxn = XNOR(xo, a)\n\
       q = DFF(xn)\ny = BUF(q)\n"
  in
  let kinds_used =
    List.sort_uniq compare
      (List.init (Netlist.size c) (fun n -> Netlist.kind c n))
  in
  Alcotest.(check int) "all 12 kinds present" 12 (List.length kinds_used);
  Alcotest.(check bool) "BUFF parsed as Buf" true
    (Netlist.kind c (Netlist.find_exn c "bf") = Gate.Buf);
  let text = Bist_circuit.Bench_writer.to_string c in
  let c2 = Parser.parse_string ~name:"kinds" text in
  Alcotest.(check int) "same size" (Netlist.size c) (Netlist.size c2);
  for n = 0 to Netlist.size c - 1 do
    let n2 = Netlist.find_exn c2 (Netlist.name c n) in
    Alcotest.(check bool)
      ("kind of " ^ Netlist.name c n)
      true
      (Netlist.kind c n = Netlist.kind c2 n2);
    Alcotest.(check (list string)) ("fanins of " ^ Netlist.name c n)
      (Array.to_list (Array.map (Netlist.name c) (Netlist.fanins c n)))
      (Array.to_list (Array.map (Netlist.name c2) (Netlist.fanins c2 n2)))
  done;
  (* and the rewrite is a fixpoint *)
  Alcotest.(check string) "write . parse . write stable" text
    (Bist_circuit.Bench_writer.to_string c2)

let expect_parse_error text =
  match Parser.parse_string ~name:"bad" text with
  | _ -> Alcotest.fail "expected Parse_error"
  | exception Parser.Parse_error _ -> ()

let test_parse_errors () =
  expect_parse_error "INPUT(a";
  expect_parse_error "a = FOO(b)";
  expect_parse_error "a = = AND(b, c)";
  expect_parse_error "INPUT(a) INPUT(b)";
  expect_parse_error "a = INPUT(b)"

let test_parse_comments_and_blanks () =
  let c =
    Parser.parse_string ~name:"t"
      "# header\n\nINPUT(a)  # inline\nOUTPUT(y)\n   y = NOT( a )\n"
  in
  Alcotest.(check int) "one gate" 1 (Netlist.num_gates c)

let test_structural_errors () =
  let fails_at line text =
    match Parser.parse_string ~name:"bad" text with
    | _ -> Alcotest.fail "expected Parse_error"
    | exception Parser.Parse_error e ->
      Alcotest.(check int) "error line" line e.line
  in
  (* duplicate definition *)
  fails_at 4 "INPUT(a)\nOUTPUT(y)\ny = NOT(a)\ny = BUF(a)\n";
  (* undefined signal *)
  fails_at 3 "INPUT(a)\nOUTPUT(y)\ny = AND(a, ghost)\n";
  (* undefined output *)
  fails_at 2 "INPUT(a)\nOUTPUT(ghost)\n";
  (* combinational loop: structurally well-formed, rejected in finalize;
     whole-netlist properties report line 0 ("the file as a whole") as a
     Parse_error like every other rejection of input text *)
  fails_at 0 "INPUT(a)\nOUTPUT(y)\ny = AND(a, z)\nz = BUF(y)\n"

let test_sequential_loop_ok () =
  (* A loop through a DFF is legal. *)
  let c =
    Parser.parse_string ~name:"loop"
      "INPUT(a)\nOUTPUT(q)\nq = DFF(d)\nd = XOR(q, a)\n"
  in
  Alcotest.(check int) "one dff" 1 (Netlist.num_dffs c)

let test_topo_order () =
  let c = Bist_bench.S27.circuit () in
  let pos = Array.make (Netlist.size c) (-1) in
  Array.iteri (fun i n -> pos.(n) <- i) (Netlist.topo_order c);
  Array.iter
    (fun n ->
      Array.iter
        (fun d ->
          if Gate.is_combinational (Netlist.kind c d) then
            Alcotest.(check bool) "fanin before gate" true (pos.(d) < pos.(n)))
        (Netlist.fanins c n))
    (Netlist.topo_order c)

let test_fanout_counts () =
  let c = Bist_bench.S27.circuit () in
  let g8 = Netlist.find_exn c "G8" in
  (* G8 feeds G15 and G16 *)
  Alcotest.(check int) "G8 drives two pins" 2 (Netlist.fanout_count c g8);
  let g11 = Netlist.find_exn c "G11" in
  (* G11 feeds G17, G10, G6(dff) *)
  Alcotest.(check int) "G11 drives three pins" 3 (Netlist.fanout_count c g11)

let test_stats () =
  let s = Bist_circuit.Stats.of_netlist (Bist_bench.S27.circuit ()) in
  Alcotest.(check int) "gates" 10 s.Bist_circuit.Stats.num_gates;
  Alcotest.(check bool) "depth positive" true (s.max_level >= 3)

(* Structural invariants over random netlists: fanout bookkeeping is
   consistent with the fanin arrays, and the topological order covers
   every combinational node exactly once. *)
let test_netlist_invariants =
  Testutil.qcheck
    (QCheck.Test.make ~name:"netlist invariants on random circuits" ~count:50
       QCheck.(int_range 0 300)
       (fun seed ->
         let c = Testutil.small_circuit seed in
         let n = Netlist.size c in
         (* pin-accurate fanout counts: recount from scratch *)
         let counts = Array.make n 0 in
         for v = 0 to n - 1 do
           Array.iter (fun d -> counts.(d) <- counts.(d) + 1) (Netlist.fanins c v)
         done;
         Array.iter (fun po -> counts.(po) <- counts.(po) + 1) (Netlist.outputs c);
         let fanouts_ok =
           List.for_all
             (fun v -> Netlist.fanout_count c v = counts.(v))
             (List.init n Fun.id)
         in
         (* fanouts lists exactly the distinct consumers *)
         let consumers_ok =
           List.for_all
             (fun v ->
               Array.for_all
                 (fun w -> Array.exists (fun d -> d = v) (Netlist.fanins c w))
                 (Netlist.fanouts c v))
             (List.init n Fun.id)
         in
         (* topo covers every combinational node exactly once *)
         let seen = Array.make n 0 in
         Array.iter (fun v -> seen.(v) <- seen.(v) + 1) (Netlist.topo_order c);
         let topo_ok =
           List.for_all
             (fun v ->
               if Gate.is_combinational (Netlist.kind c v) then seen.(v) = 1
               else seen.(v) = 0)
             (List.init n Fun.id)
         in
         fanouts_ok && consumers_ok && topo_ok))

let test_builder_forward_refs () =
  let b = Bist_circuit.Builder.create ~name:"fw" in
  Bist_circuit.Builder.add_output b "y";
  Bist_circuit.Builder.add_gate b ~output:"y" Gate.And [ "a"; "b" ];
  Bist_circuit.Builder.add_input b "a";
  Bist_circuit.Builder.add_input b "b";
  let c = Bist_circuit.Builder.finalize b in
  Alcotest.(check int) "resolved" 2 (Netlist.num_inputs c)

(* Writer name hygiene *)

module Names = Bist_circuit.Names
module Writer = Bist_circuit.Bench_writer

(* A small fixed-shape circuit over arbitrary (possibly hostile) signal
   names; the "|i" suffix guarantees distinctness without defusing the
   hostility. *)
let hostile_circuit names =
  let nm = Array.mapi (fun i s -> Printf.sprintf "%s|%d" s i) names in
  let b = Bist_circuit.Builder.create ~name:"hostile" in
  Bist_circuit.Builder.add_input b nm.(0);
  Bist_circuit.Builder.add_input b nm.(1);
  Bist_circuit.Builder.add_gate b ~output:nm.(2) Gate.And [ nm.(0); nm.(1) ];
  Bist_circuit.Builder.add_gate b ~output:nm.(3) Gate.Dff [ nm.(2) ];
  Bist_circuit.Builder.add_output b nm.(3);
  Bist_circuit.Builder.finalize b

let contains_substring text sub =
  let n = String.length sub in
  let rec find i =
    i + n <= String.length text
    && (String.sub text i n = sub || find (i + 1))
  in
  find 0

(* Comment lines don't survive a reparse (the rename records are
   comments), so textual idempotence is: netlist content stable
   immediately, full text a fixpoint from the first reparse on. *)
let netlist_lines text =
  String.split_on_char '\n' text
  |> List.filter (fun l -> l <> "" && l.[0] <> '#')

let test_writer_sanitizes () =
  let c = hostile_circuit [| "a b"; "c(d)"; "e,f=#"; "ok" |] in
  let text = Writer.to_string c in
  Alcotest.(check bool) "rename recorded" true
    (contains_substring text "# renamed:");
  let c2 = Parser.parse_string ~name:"hostile" text in
  Alcotest.(check int) "same size" (Netlist.size c) (Netlist.size c2);
  let text2 = Writer.to_string c2 in
  Alcotest.(check (list string)) "content stable"
    (netlist_lines text) (netlist_lines text2);
  Alcotest.(check string) "fixpoint after one reparse" text2
    (Writer.to_string (Parser.parse_string ~name:"hostile" text2));
  (* Originals survive in header comments. *)
  Alcotest.(check bool) "original name in comment" true
    (contains_substring text "was \"a b|0\"")

let test_writer_sanitize_collisions () =
  (* "a b" and "a(b" both mangle to "a_b", which is also taken by a
     valid node: deterministic _2/_3 suffixes, no collisions. *)
  let b = Bist_circuit.Builder.create ~name:"col" in
  Bist_circuit.Builder.add_input b "a b";
  Bist_circuit.Builder.add_input b "a(b";
  Bist_circuit.Builder.add_input b "a_b";
  Bist_circuit.Builder.add_gate b ~output:"y" Gate.And [ "a b"; "a(b" ];
  Bist_circuit.Builder.add_output b "y";
  let c = Bist_circuit.Builder.finalize b in
  let plan = Names.plan Names.Bench c in
  let emitted =
    List.sort_uniq compare
      (List.init (Netlist.size c) (Names.out_name plan))
  in
  Alcotest.(check int) "all names distinct" (Netlist.size c)
    (List.length emitted);
  let renames = List.map (fun (_, e, _) -> e) (Names.renamed plan) in
  Alcotest.(check (list string)) "deterministic suffixes"
    [ "a_b_2"; "a_b_3" ] renames

let test_writer_strict () =
  let c = hostile_circuit [| "a b"; "x"; "y"; "z" |] in
  (match Writer.to_string ~strict:true c with
  | (_ : string) -> Alcotest.fail "expected Invalid_name"
  | exception Names.Invalid_name { name; _ } ->
    Alcotest.(check string) "offender" "a b|0" name);
  let ok = hostile_circuit [| "a"; "x"; "y"; "z" |] in
  Alcotest.(check bool) "valid names pass strict" true
    (String.length (Writer.to_string ~strict:true ok) > 0)

let test_writer_header_newline () =
  let b = Bist_circuit.Builder.create ~name:"evil\nINPUT(zz)" in
  Bist_circuit.Builder.add_input b "a";
  Bist_circuit.Builder.add_gate b ~output:"y" Gate.Buf [ "a" ];
  Bist_circuit.Builder.add_output b "y";
  let c = Bist_circuit.Builder.finalize b in
  let text = Writer.to_string c in
  (* The name is cut at the newline: no line of the output smuggles in
     an INPUT statement. *)
  List.iter
    (fun line ->
      Alcotest.(check bool) "no injected INPUT(zz)" false
        (String.equal line "INPUT(zz)"))
    (String.split_on_char '\n' text);
  let c2 = Parser.parse_string ~name:"evil" text in
  Alcotest.(check int) "still one input" 1 (Netlist.num_inputs c2)

let test_writer_atomic_to_file () =
  let path = Filename.temp_file "bw" ".bench" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let c = Bist_bench.S27.circuit () in
      Writer.to_file c path;
      let ic = open_in_bin path in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Alcotest.(check string) "file matches to_string" (Writer.to_string c)
        text)

let hostile_name_gen =
  QCheck.Gen.(
    string_size ~gen:(oneofl
      [ ' '; '('; ')'; ','; '='; '#'; '\t'; '\n'; '$'; '.'; '\\'; '|';
        'a'; 'Z'; '0'; '_'; '['; ']' ])
      (int_range 0 6))

let test_hostile_roundtrip =
  Testutil.qcheck
    (QCheck.Test.make
       ~name:"sanitized writer output reparses to the same serialization"
       ~count:200
       (QCheck.make
          QCheck.Gen.(array_size (return 4) hostile_name_gen))
       (fun names ->
         let c = hostile_circuit names in
         let text = Writer.to_string c in
         let c2 = Parser.parse_string ~name:"hostile" text in
         let text2 = Writer.to_string c2 in
         netlist_lines text = netlist_lines text2
         && String.equal text2
              (Writer.to_string (Parser.parse_string ~name:"hostile" text2))))

let suite =
  [
    Alcotest.test_case "gate eval" `Quick test_gate_eval;
    Alcotest.test_case "gate arity" `Quick test_gate_arity;
    test_gate_eval_consistency;
    Alcotest.test_case "gate names" `Quick test_gate_names;
    Alcotest.test_case "parse s27" `Quick test_parse_s27;
    Alcotest.test_case "writer roundtrip" `Quick test_parse_roundtrip;
    Alcotest.test_case "writer roundtrip all kinds" `Quick test_roundtrip_all_kinds;
    Alcotest.test_case "parse errors" `Quick test_parse_errors;
    Alcotest.test_case "comments and blanks" `Quick test_parse_comments_and_blanks;
    Alcotest.test_case "structural errors" `Quick test_structural_errors;
    Alcotest.test_case "sequential loop ok" `Quick test_sequential_loop_ok;
    Alcotest.test_case "topological order" `Quick test_topo_order;
    Alcotest.test_case "fanout counts" `Quick test_fanout_counts;
    Alcotest.test_case "stats" `Quick test_stats;
    test_netlist_invariants;
    Alcotest.test_case "builder forward refs" `Quick test_builder_forward_refs;
    Alcotest.test_case "writer sanitizes hostile names" `Quick
      test_writer_sanitizes;
    Alcotest.test_case "sanitize collisions deterministic" `Quick
      test_writer_sanitize_collisions;
    Alcotest.test_case "strict writer refuses" `Quick test_writer_strict;
    Alcotest.test_case "header newline truncated" `Quick
      test_writer_header_newline;
    Alcotest.test_case "to_file atomic write" `Quick
      test_writer_atomic_to_file;
    test_hostile_roundtrip;
  ]
