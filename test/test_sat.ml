(* SAT subsystem tests: solver core vs brute force, CNF encoder vs the
   packed fault simulator, DIMACS round-trip, and verdict cross-checks
   on synthetic and registry circuits. *)

module Solver = Bist_sat.Solver

let qcheck = Testutil.qcheck

(* --- Solver core vs brute-force enumeration ------------------------- *)

(* A random CNF over [nvars] variables as a literal-list list. *)
let cnf_gen =
  QCheck.Gen.(
    int_range 1 8 >>= fun nvars ->
    int_range 1 30 >>= fun nclauses ->
    let lit_gen =
      int_range 0 (nvars - 1) >>= fun v ->
      bool >|= fun sgn ->
      let l = Solver.lit_of_var v in
      if sgn then l else Solver.neg l
    in
    let clause_gen = int_range 1 4 >>= fun k -> list_size (return k) lit_gen in
    list_size (return nclauses) clause_gen >|= fun cls -> (nvars, cls))

let pp_cnf (nvars, cls) =
  Printf.sprintf "nvars=%d %s" nvars
    (String.concat " & "
       (List.map
          (fun c ->
            "("
            ^ String.concat "|"
                (List.map
                   (fun l ->
                     Printf.sprintf "%s%d"
                       (if Solver.pos l then "" else "~")
                       (Solver.var_of_lit l))
                   c)
            ^ ")")
          cls))

let brute_force_sat nvars cls =
  let n = 1 lsl nvars in
  let rec try_assign i =
    if i >= n then false
    else
      let value v = i land (1 lsl v) <> 0 in
      let clause_ok c =
        List.exists
          (fun l ->
            let x = value (Solver.var_of_lit l) in
            if Solver.pos l then x else not x)
          c
      in
      if List.for_all clause_ok cls then true else try_assign (i + 1)
  in
  try_assign 0

let check_model s cls =
  List.for_all (fun c -> List.exists (fun l -> Solver.model_lit s l) c) cls

let solver_vs_brute =
  QCheck.Test.make ~count:300 ~name:"solver agrees with brute force"
    (QCheck.make ~print:pp_cnf cnf_gen)
    (fun (nvars, cls) ->
      let s = Solver.create () in
      Solver.ensure_vars s nvars;
      List.iter (fun c -> Solver.add_clause_l s c) cls;
      match Solver.solve s with
      | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      | Solver.Sat ->
        if not (brute_force_sat nvars cls) then
          QCheck.Test.fail_report "solver Sat but brute force Unsat"
        else if not (check_model s cls) then
          QCheck.Test.fail_report "model does not satisfy the CNF"
        else true
      | Solver.Unsat ->
        if brute_force_sat nvars cls then
          QCheck.Test.fail_report "solver Unsat but brute force Sat"
        else true)

let solver_assumptions_vs_brute =
  QCheck.Test.make ~count:300 ~name:"assumptions agree with brute force"
    (QCheck.make
       ~print:(fun (c, a) -> pp_cnf c ^ Printf.sprintf " assume v0=%b" a)
       QCheck.Gen.(pair cnf_gen bool))
    (fun ((nvars, cls), a0) ->
      let s = Solver.create () in
      Solver.ensure_vars s nvars;
      List.iter (fun c -> Solver.add_clause_l s c) cls;
      let assumption =
        if a0 then Solver.lit_of_var 0 else Solver.neg (Solver.lit_of_var 0)
      in
      let expected = brute_force_sat nvars ([ assumption ] :: cls) in
      (* Solve twice with opposite assumptions first, to exercise the
         incremental path: earlier solves must not change verdicts. *)
      ignore (Solver.solve ~assumptions:[| Solver.neg assumption |] s);
      match Solver.solve ~assumptions:[| assumption |] s with
      | Solver.Unknown -> QCheck.Test.fail_report "unexpected Unknown"
      | Solver.Sat ->
        if not expected then
          QCheck.Test.fail_report "Sat under assumption, brute force disagrees"
        else if not (Solver.model_lit s assumption) then
          QCheck.Test.fail_report "model violates the assumption"
        else check_model s cls
      | Solver.Unsat ->
        if expected then
          QCheck.Test.fail_report "Unsat under assumption, brute force disagrees"
        else true)

let test_solver_basics () =
  let s = Solver.create () in
  let a = Solver.lit_of_var (Solver.new_var s) in
  let b = Solver.lit_of_var (Solver.new_var s) in
  Solver.add_clause_l s [ a; b ];
  Solver.add_clause_l s [ Solver.neg a; b ];
  Alcotest.(check bool) "sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "b is forced" true (Solver.model_lit s b);
  Solver.add_clause_l s [ Solver.neg b; a ];
  Alcotest.(check bool) "still sat" true (Solver.solve s = Solver.Sat);
  Alcotest.(check bool) "a forced too" true (Solver.model_lit s a);
  Alcotest.(check bool) "unsat under ~a" true
    (Solver.solve ~assumptions:[| Solver.neg a |] s = Solver.Unsat);
  Alcotest.(check bool) "recovers after assumption" true
    (Solver.solve s = Solver.Sat);
  Solver.add_clause_l s [ Solver.neg a; Solver.neg b ];
  Alcotest.(check bool) "unsat" true (Solver.solve s = Solver.Unsat);
  Alcotest.(check bool) "stays unsat" true (Solver.solve s = Solver.Unsat)

let test_solver_empty_clause () =
  let s = Solver.create () in
  Solver.add_clause_l s [];
  Alcotest.(check bool) "empty clause" true (Solver.solve s = Solver.Unsat)

let test_solver_budget () =
  (* A hard pigeonhole-style instance with a 0-conflict budget must
     come back Unknown, not hang or crash. *)
  let s = Solver.create () in
  let n = 6 in
  let holes = n - 1 in
  let v i j = Solver.lit_of_var ((i * holes) + j) in
  for i = 0 to n - 1 do
    Solver.add_clause s (Array.init holes (fun j -> v i j))
  done;
  for j = 0 to holes - 1 do
    for i = 0 to n - 1 do
      for i' = i + 1 to n - 1 do
        Solver.add_clause_l s [ Solver.neg (v i j); Solver.neg (v i' j) ]
      done
    done
  done;
  Alcotest.(check bool) "budget exhausts" true
    (Solver.solve ~max_conflicts:3 s = Solver.Unknown);
  Alcotest.(check bool) "full solve proves unsat" true
    (Solver.solve s = Solver.Unsat)

(* --- CNF encoder vs the packed simulator ---------------------------- *)

module Cnf = Bist_sat.Cnf
module Satgen = Bist_sat.Satgen
module Dimacs = Bist_sat.Dimacs
module Netlist = Bist_circuit.Netlist
module Fault = Bist_fault.Fault
module Fsim = Bist_fault.Fsim
module Universe = Bist_fault.Universe
module Packed_sim = Bist_sim.Packed_sim
module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module P = Bist_logic.Packed

(* Constrain the view's PIs to a binary sequence via assumptions. *)
let pi_assumptions view seq =
  let k = Tseq.length seq in
  let w = Tseq.width seq in
  Array.init (k * w) (fun i ->
      let f = i / w and pi = i mod w in
      let l = Cnf.pi_one_lit view ~frame:f ~pi in
      match Vector.get (Tseq.get seq f) pi with
      | T.One -> l
      | T.Zero -> Bist_sat.Solver.neg l
      | T.X -> invalid_arg "pi_assumptions: X")

(* Under a fully-constrained binary input sequence, every good rail
   pair in the CNF must decode to exactly the simulator's lane-0 value
   for every node at every frame. *)
let good_rails_vs_sim =
  QCheck.Test.make ~count:40 ~name:"good rails match simulator lane 0"
    (QCheck.make
       ~print:(fun (seed, seq_seed) ->
         Printf.sprintf "circuit=%d seq=%d" seed seq_seed)
       QCheck.Gen.(pair (int_range 0 24) (int_range 0 10_000)))
    (fun (seed, seq_seed) ->
      let circuit = Testutil.small_circuit seed in
      let k = 3 in
      let seq =
        Tseq.random_binary
          (Bist_util.Rng.create seq_seed)
          ~width:(Netlist.num_inputs circuit)
          ~length:k
      in
      let view = Cnf.view ~frames:k circuit in
      let solver = Solver.create () in
      Solver.ensure_vars solver (Cnf.base_vars view);
      Cnf.iter_good_clauses view (fun c -> Solver.add_clause solver c);
      (match Solver.solve ~assumptions:(pi_assumptions view seq) solver with
      | Solver.Sat -> ()
      | _ -> QCheck.Test.fail_report "good view unsat under binary inputs");
      let sim = Packed_sim.create circuit in
      Packed_sim.reset sim;
      let ok = ref true in
      for f = 0 to k - 1 do
        Packed_sim.step sim (Tseq.get seq f);
        for n = 0 to Netlist.size circuit - 1 do
          let o, z = Cnf.good_rails view ~frame:f n in
          let decoded =
            match (Solver.model_lit solver o, Solver.model_lit solver z) with
            | true, false -> T.One
            | false, true -> T.Zero
            | false, false -> T.X
            | true, true -> T.X (* rails exclusive by construction *)
          in
          if decoded <> P.get (Packed_sim.node_value sim n) 0 then ok := false
        done
      done;
      !ok)

(* Exhaustive exactness on narrow circuits: enumerate every binary
   sequence of length [k] and compare "some sequence detects" with the
   SAT verdict. Detection inside a shorter prefix is covered because a
   detection at step u survives arbitrary later vectors. *)
let all_sequences ~width ~length =
  let n_vec = 1 lsl width in
  let rec go acc f =
    if f = length then List.rev acc |> Array.of_list |> Tseq.of_vectors |> fun s -> [ s ]
    else
      List.concat_map
        (fun v ->
          go
            (Vector.init width (fun i ->
                 if v land (1 lsl i) <> 0 then T.One else T.Zero)
            :: acc)
            (f + 1))
        (List.init n_vec (fun v -> v))
  in
  go [] 0

let test_exact_verdicts_brute () =
  List.iter
    (fun seed ->
      let circuit = Testutil.small_circuit seed in
      let w = Netlist.num_inputs circuit in
      Alcotest.(check bool) "narrow circuit" true (w <= 3);
      let k = 2 in
      let seqs = all_sequences ~width:w ~length:k in
      let view = Cnf.view ~frames:k circuit in
      let universe = Universe.collapsed circuit in
      Universe.iter
        (fun _ fault ->
          let brute =
            List.exists (fun s -> Fsim.detects circuit fault s) seqs
          in
          match Satgen.solve_fault view fault with
          | Satgen.Unknown -> Alcotest.fail "unexpected Unknown"
          | Satgen.Test seq ->
            Alcotest.(check bool)
              (Fault.name circuit fault ^ ": SAT but no sequence detects")
              true brute;
            Alcotest.(check bool)
              (Fault.name circuit fault ^ ": derived test must detect")
              true
              (Fsim.detects circuit fault seq)
          | Satgen.Unreachable | Satgen.Blocked ->
            Alcotest.(check bool)
              (Fault.name circuit fault ^ ": UNSAT but a sequence detects")
              false brute)
        universe)
    [ 0; 4; 8 ]

(* The ISSUE-level cross-check: SAT verdicts vs the packed fault
   simulator on the 25 seeded synthetic circuits, at a small frame
   bound. UNSAT => random simulation must never detect; SAT => the
   decoded test detects (checked by Satgen itself, re-checked here). *)
let verdicts_vs_sim =
  QCheck.Test.make ~count:25 ~name:"verdicts vs simulator on synthetics"
    (QCheck.make ~print:string_of_int QCheck.Gen.(int_range 0 24))
    (fun seed ->
      let circuit = Testutil.small_circuit seed in
      let k = 3 in
      let view = Cnf.view ~frames:k circuit in
      let universe = Universe.collapsed circuit in
      let rng = Bist_util.Rng.create (1000 + seed) in
      (* A fixed slice of the universe keeps the test fast. *)
      let step = max 1 (Universe.size universe / 8) in
      let i = ref 0 in
      Universe.iter
        (fun id fault ->
          if id mod step = 0 then begin
            incr i;
            match Satgen.solve_fault view fault with
            | Satgen.Unknown -> ()
            | Satgen.Test seq ->
              if not (Fsim.detects circuit fault seq) then
                QCheck.Test.fail_reportf "%s: SAT test fails simulation"
                  (Fault.name circuit fault)
            | Satgen.Unreachable | Satgen.Blocked ->
              for _ = 1 to 16 do
                let s =
                  Tseq.random_binary rng
                    ~width:(Netlist.num_inputs circuit)
                    ~length:k
                in
                if Fsim.detects circuit fault s then
                  QCheck.Test.fail_reportf
                    "%s: proved untestable at %d frames but simulator detects"
                    (Fault.name circuit fault) k
              done
          end)
        universe;
      !i > 0)

let test_verdicts_registry () =
  (* Every registry circuit at a small frame bound: spot-check a few
     faults per circuit; UNSAT verdicts are cross-checked by random
     simulation at the same length. *)
  List.iter
    (fun entry ->
      let circuit = entry.Bist_bench.Registry.circuit () in
      let k = 2 in
      let view = Cnf.view ~frames:k circuit in
      let universe = Universe.collapsed circuit in
      let rng = Bist_util.Rng.create 7 in
      let step = max 1 (Universe.size universe / 3) in
      Universe.iter
        (fun id fault ->
          if id mod step = 0 then
            match Satgen.solve_fault ~max_conflicts:2_000 view fault with
            | Satgen.Unknown -> ()
            | Satgen.Test seq ->
              Alcotest.(check bool)
                (entry.Bist_bench.Registry.name
                 ^ " " ^ Fault.name circuit fault ^ ": test detects")
                true
                (Fsim.detects circuit fault seq)
            | Satgen.Unreachable | Satgen.Blocked ->
              for _ = 1 to 8 do
                let s =
                  Tseq.random_binary rng
                    ~width:(Netlist.num_inputs circuit)
                    ~length:k
                in
                Alcotest.(check bool)
                  (entry.Bist_bench.Registry.name
                   ^ " " ^ Fault.name circuit fault
                   ^ ": proved untestable, sim must not detect")
                  false
                  (Fsim.detects circuit fault s)
              done)
        universe)
    (Bist_bench.Registry.all ())

(* --- DIMACS round-trip ---------------------------------------------- *)

let test_dimacs_roundtrip () =
  let circuit = Bist_bench.Registry.s27.Bist_bench.Registry.circuit () in
  let view = Cnf.view ~frames:3 circuit in
  let universe = Universe.collapsed circuit in
  let fault = Universe.get universe 0 in
  let text = Dimacs.to_string view fault in
  (* Header names circuit, fault and frame bound. *)
  let contains sub =
    let n = String.length text and m = String.length sub in
    let rec go i = i + m <= n && (String.sub text i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool) "header names circuit" true (contains "circuit s27");
  Alcotest.(check bool) "header names fault" true
    (contains (Fault.name circuit fault));
  Alcotest.(check bool) "header names frames" true (contains "frames 3");
  let e = Dimacs.export view fault in
  let parsed = Dimacs.parse text in
  Alcotest.(check int) "nvars round-trips" e.Dimacs.nvars parsed.Dimacs.p_nvars;
  Alcotest.(check int) "clause count round-trips"
    (List.length e.Dimacs.clauses)
    (List.length parsed.Dimacs.p_clauses);
  List.iter2
    (fun a b ->
      Alcotest.(check (array int)) "clause round-trips" a b)
    e.Dimacs.clauses parsed.Dimacs.p_clauses;
  (* The parsed clauses solve to the same verdict as the direct load. *)
  let direct = Satgen.solve_fault view fault in
  let s = Solver.create () in
  Solver.ensure_vars s parsed.Dimacs.p_nvars;
  List.iter (fun c -> Solver.add_clause s c) parsed.Dimacs.p_clauses;
  let via_dimacs =
    Solver.solve ~assumptions:[| e.Dimacs.query.Cnf.detect |] s
  in
  let agree =
    match (direct, via_dimacs) with
    | Satgen.Test _, Solver.Sat -> true
    | (Satgen.Unreachable | Satgen.Blocked), Solver.Unsat -> true
    | Satgen.Unknown, _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "parsed CNF agrees with direct load" true agree

let test_dimacs_parse_errors () =
  let bad text =
    match Dimacs.parse text with
    | exception Dimacs.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "clause before header" true (bad "1 2 0\n");
  Alcotest.(check bool) "bad literal" true (bad "p cnf 2 1\n1 foo 0\n");
  Alcotest.(check bool) "unterminated" true (bad "p cnf 2 1\n1 2\n");
  Alcotest.(check bool) "out of range" true (bad "p cnf 1 1\n2 0\n");
  Alcotest.(check bool) "count mismatch" true (bad "p cnf 2 2\n1 2 0\n")

let suite =
  [
    Alcotest.test_case "solver basics" `Quick test_solver_basics;
    Alcotest.test_case "empty clause" `Quick test_solver_empty_clause;
    Alcotest.test_case "conflict budget" `Quick test_solver_budget;
    qcheck solver_vs_brute;
    qcheck solver_assumptions_vs_brute;
    qcheck good_rails_vs_sim;
    Alcotest.test_case "exact verdicts (brute force)" `Quick
      test_exact_verdicts_brute;
    qcheck verdicts_vs_sim;
    Alcotest.test_case "verdicts on registry circuits" `Slow
      test_verdicts_registry;
    Alcotest.test_case "dimacs round-trip" `Quick test_dimacs_roundtrip;
    Alcotest.test_case "dimacs parse errors" `Quick test_dimacs_parse_errors;
  ]
