(* Malformed .bench netlists must fail with a Parse_error carrying the
   line number of the offending statement — not a generic Failure from
   deep inside netlist construction. *)

module P = Bist_circuit.Bench_parser

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_error ~expected_line ~substring text () =
  match P.parse_string ~name:"bad" text with
  | (_ : Bist_circuit.Netlist.t) ->
    Alcotest.failf "expected Parse_error on %S" text
  | exception P.Parse_error { line; message } ->
    Alcotest.(check int) "line" expected_line line;
    if not (contains message substring) then
      Alcotest.failf "message %S does not mention %S" message substring

let unbalanced_open = "INPUT(a\nb = NOT(a)\nOUTPUT(b)\n"
let unbalanced_close = "INPUT(a)\nb = NOT(a))\nOUTPUT(b)\n"
let missing_paren = "INPUT(a)\nb = NOT a\nOUTPUT(b)\n"
let dup_gate = "INPUT(a)\nb = NOT(a)\nb = BUF(a)\nOUTPUT(b)\n"
let dup_input = "INPUT(a)\n\nINPUT(a)\nb = NOT(a)\nOUTPUT(b)\n"
let unknown_kind = "INPUT(a)\nb = NANDY(a, a)\nOUTPUT(b)\n"
let dangling_fanin = "INPUT(a)\nb = AND(a, ghost)\nOUTPUT(b)\n"
let dangling_output = "INPUT(a)\nb = NOT(a)\nOUTPUT(c)\n"
let bad_char = "INPUT(a)\nb = NOT(a)\nOUTPUT(b)\n!!!\n"
let const_with_args = "INPUT(a)\nz = CONST0(a)\nOUTPUT(z)\n"
let input_rhs = "INPUT(a)\n\nb = INPUT(a)\nOUTPUT(b)\n"
let self_feeding_const = "INPUT(a)\ny = AND(a, tie)\ntie = CONST0(tie)\nOUTPUT(y)\n"

let suite =
  [
    Alcotest.test_case "unbalanced ( at line 1" `Quick
      (check_error ~expected_line:1 ~substring:"argument list" unbalanced_open);
    Alcotest.test_case "unbalanced ) at line 2" `Quick
      (check_error ~expected_line:2 ~substring:"argument list" unbalanced_close);
    Alcotest.test_case "missing ( at line 2" `Quick
      (check_error ~expected_line:2 ~substring:"expected '('" missing_paren);
    Alcotest.test_case "duplicate gate definition at line 3" `Quick
      (check_error ~expected_line:3 ~substring:"already defined at line 2" dup_gate);
    Alcotest.test_case "duplicate INPUT at line 3" `Quick
      (check_error ~expected_line:3 ~substring:"already defined at line 1" dup_input);
    Alcotest.test_case "unknown gate kind at line 2" `Quick
      (check_error ~expected_line:2 ~substring:"NANDY" unknown_kind);
    Alcotest.test_case "dangling fanin at line 2" `Quick
      (check_error ~expected_line:2 ~substring:"ghost" dangling_fanin);
    Alcotest.test_case "dangling OUTPUT at line 3" `Quick
      (check_error ~expected_line:3 ~substring:"undefined" dangling_output);
    Alcotest.test_case "garbage characters at line 4" `Quick
      (check_error ~expected_line:4 ~substring:"malformed" bad_char);
    Alcotest.test_case "CONST0 with an argument at line 2" `Quick
      (check_error ~expected_line:2 ~substring:"CONST0" const_with_args);
    Alcotest.test_case "INPUT on the right-hand side at line 3" `Quick
      (check_error ~expected_line:3 ~substring:"right-hand side" input_rhs);
    Alcotest.test_case "self-feeding CONST at line 3" `Quick
      (check_error ~expected_line:3 ~substring:"CONST0" self_feeding_const);
    Alcotest.test_case "valid circuit still parses" `Quick (fun () ->
        let c =
          P.parse_string ~name:"ok" "INPUT(a)\nb = DFF(c)\nc = NOR(a, b)\nOUTPUT(c)\n"
        in
        Alcotest.(check int) "inputs" 1 (Bist_circuit.Netlist.num_inputs c));
  ]
