(* Shared generators and helpers for the test suites. *)

module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary

let qcheck = QCheck_alcotest.to_alcotest

(* QCheck generators *)

let ternary_gen = QCheck.Gen.oneofl [ T.Zero; T.One; T.X ]

let binary_gen = QCheck.Gen.oneofl [ T.Zero; T.One ]

let ternary = QCheck.make ~print:(fun t -> String.make 1 (T.to_char t)) ternary_gen

let vector_gen ~width =
  QCheck.Gen.map
    (fun cells -> Vector.init width (fun i -> List.nth cells i))
    (QCheck.Gen.list_size (QCheck.Gen.return width) ternary_gen)

let seq_gen ~width ~max_len =
  QCheck.Gen.(
    int_range 1 max_len >>= fun len ->
    map
      (fun vecs -> Tseq.of_vectors (Array.of_list vecs))
      (list_size (return len) (vector_gen ~width)))

let seq ~width ~max_len =
  QCheck.make
    ~print:(fun s -> String.concat "," (Tseq.to_strings s))
    (seq_gen ~width ~max_len)

let binary_seq_gen ~width ~max_len =
  QCheck.Gen.(
    int_range 1 max_len >>= fun len ->
    map
      (fun seed ->
        let rng = Bist_util.Rng.create seed in
        Tseq.random_binary rng ~width ~length:len)
      (int_range 0 1_000_000))

let binary_seq ~width ~max_len =
  QCheck.make
    ~print:(fun s -> String.concat "," (Tseq.to_strings s))
    (binary_seq_gen ~width ~max_len)

(* Small random circuits for differential testing. *)
let small_profile seed =
  {
    Bist_bench.Synth.name = Printf.sprintf "rand%d" seed;
    num_inputs = 3 + (seed mod 4);
    num_outputs = 2 + (seed mod 3);
    num_ffs = 2 + (seed mod 5);
    num_gates = 20 + (seed mod 30);
    sync_fraction = 0.8;
    seed;
    style = Bist_bench.Synth.Random;
  }

let small_circuit seed = Bist_bench.Synth.generate (small_profile seed)

let circuit_and_seq_gen =
  QCheck.Gen.(
    int_range 0 500 >>= fun cseed ->
    int_range 0 1_000_000 >>= fun sseed ->
    int_range 2 40 >>= fun len ->
    return (cseed, sseed, len))

let circuit_and_seq =
  QCheck.make
    ~print:(fun (c, s, l) -> Printf.sprintf "circuit seed %d, seq seed %d, len %d" c s l)
    circuit_and_seq_gen

(* Alcotest testables *)

let tseq_testable =
  Alcotest.testable
    (fun fmt s -> Format.pp_print_string fmt (String.concat "," (Tseq.to_strings s)))
    Tseq.equal

let vector_testable =
  Alcotest.testable Vector.pp Vector.equal

let ternary_testable = Alcotest.testable T.pp T.equal

let check_seq = Alcotest.check tseq_testable
let check_vec = Alcotest.check vector_testable
