(* Cross-cutting property tests: the soundness lemmas the scheme's
   correctness argument rests on, exercised on random circuits. *)

module Tseq = Bist_logic.Tseq
module T = Bist_logic.Ternary
module Bitset = Bist_util.Bitset
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Ops = Bist_core.Ops
module Packed_sim = Bist_sim.Packed_sim

(* THE lemma: an expanded sequence detects everything its stored seed
   detects (because the seed is a prefix and detection is monotone under
   information refinement — here checked directly by simulation). *)
let test_expansion_detects_superset =
  Testutil.qcheck
    (QCheck.Test.make ~name:"Sexp detects a superset of S" ~count:25
       QCheck.(pair Testutil.circuit_and_seq (int_range 1 3))
       (fun ((cseed, sseed, len), n) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let s =
           Tseq.random_binary rng
             ~width:(Bist_circuit.Netlist.num_inputs circuit)
             ~length:len
         in
         let d_s = (Fsim.run universe s).Fsim.detected in
         let d_exp = (Fsim.run universe (Ops.expand ~n s)).Fsim.detected in
         Bitset.subset d_s d_exp))

(* The same for every partial operator pipeline. *)
let test_partial_expansion_detects_superset =
  Testutil.qcheck
    (QCheck.Test.make ~name:"partial pipelines keep the prefix property" ~count:20
       QCheck.(
         pair Testutil.circuit_and_seq
           (oneofl
              [ [ Ops.Repeat ]; [ Ops.Complement ]; [ Ops.Shift ];
                [ Ops.Reverse ]; [ Ops.Complement; Ops.Reverse ] ]))
       (fun ((cseed, sseed, len), operators) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let s =
           Tseq.random_binary rng
             ~width:(Bist_circuit.Netlist.num_inputs circuit)
             ~length:len
         in
         let d_s = (Fsim.run universe s).Fsim.detected in
         let exp = Ops.expand_with ~operators ~n:2 s in
         Bitset.subset d_s (Fsim.run universe exp).Fsim.detected))

(* End-to-end on random circuits: the scheme's verified flag holds. *)
let test_scheme_sound_on_random_circuits =
  Testutil.qcheck
    (QCheck.Test.make ~name:"scheme preserves coverage on random circuits"
       ~count:10 Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let t0 =
           Tseq.random_binary rng
             ~width:(Bist_circuit.Netlist.num_inputs circuit)
             ~length:(len + 10)
         in
         let run = Bist_core.Scheme.execute ~seed:sseed ~n:2 ~t0 universe in
         run.Bist_core.Scheme.coverage_verified))

(* Procedure 1's window bookkeeping stays inside T0. *)
let test_windows_inside_t0 () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in
  let rng = Bist_util.Rng.create 9 in
  let result = Bist_core.Procedure1.run ~rng ~n:2 ~t0 universe in
  List.iter
    (fun (sel : Bist_core.Procedure1.selected) ->
      let o = sel.proc2 in
      Alcotest.(check bool) "ustart in range" true
        (o.Bist_core.Procedure2.ustart >= 0
         && o.Bist_core.Procedure2.ustart + o.window_length <= Tseq.length t0);
      Alcotest.(check bool) "stored <= window" true
        (Tseq.length sel.seq <= o.window_length))
    result.Bist_core.Procedure1.selected

(* Packed_sim snapshots: branching two different suffixes off one prefix
   gives the same results as simulating each full sequence. *)
let test_snapshot_restore () =
  let circuit = Bist_bench.Teaching.counter3 () in
  let sim = Packed_sim.create circuit in
  let v s = Bist_logic.Vector.of_string s in
  Packed_sim.step sim (v "10");
  Packed_sim.step sim (v "01");
  let snap = Packed_sim.save_state sim in
  Packed_sim.step sim (v "01");
  let after_a = Bist_logic.Packed.get (Packed_sim.po_value sim 0) 0 in
  Packed_sim.restore_state sim snap;
  Packed_sim.step sim (v "01");
  let after_a' = Bist_logic.Packed.get (Packed_sim.po_value sim 0) 0 in
  Alcotest.check Testutil.ternary_testable "branch replays" after_a after_a';
  Packed_sim.restore_state sim snap;
  Packed_sim.step sim (v "00");
  (* en=0 holds: q0 still 1 from the count step *)
  Alcotest.check Testutil.ternary_testable "other branch differs" T.One
    (Bist_logic.Packed.get (Packed_sim.po_value sim 0) 0)

let test_state_diff_count () =
  let circuit = Bist_bench.Teaching.shift4 () in
  let sim = Packed_sim.create circuit in
  let q0 = Bist_circuit.Netlist.find_exn circuit "q0" in
  Packed_sim.add_output_force sim q0 ~mask:0b10 T.One;
  Packed_sim.step sim (Bist_logic.Vector.of_string "0");
  Packed_sim.step sim (Bist_logic.Vector.of_string "0");
  (* lane1 has q0 forced to 1 and q1 latched 1 vs good 0/0 *)
  Alcotest.(check bool) "some divergence" true
    (Packed_sim.state_diff_count sim ~lane:1 >= 1)

(* Controller misuse is rejected. *)
let test_controller_finished_error () =
  let m = Bist_hw.Memory.create ~word_bits:1 ~depth:1 () in
  Bist_hw.Memory.load_sequence_exn m (Tseq.of_strings [ "1" ]);
  let c = Bist_hw.Controller.start m ~n:1 in
  ignore (Bist_hw.Controller.emit_all c);
  Alcotest.check_raises "step after finish"
    (Invalid_argument "Controller.step: already finished") (fun () ->
      ignore (Bist_hw.Controller.step c))

(* Recovery soundness: a session hit by a random *transient* fault but
   defended by the hardened policy applies exactly the clean session's
   test — same expanded stream of length 8·n·|S|, same signature — so
   the paper's coverage guarantee survives the fault. *)
let test_recovery_preserves_session =
  Testutil.qcheck
    (QCheck.Test.make ~name:"injected-but-recovered session == clean session"
       ~count:60
       QCheck.(triple (int_range 1 6) (int_range 1 3) int)
       (fun (len, n, fseed) ->
         let circuit = Bist_bench.S27.circuit () in
         let width = Bist_circuit.Netlist.num_inputs circuit in
         let rng = Bist_util.Rng.create fseed in
         let s = Tseq.random_binary rng ~width ~length:len in
         let misr_width =
           Bist_hw.Misr.reg_width
             (Bist_hw.Misr.create ~width:(Bist_circuit.Netlist.num_outputs circuit))
         in
         let fault =
           (* redraw until the fault is transient: permanent faults are
              *supposed* to end degraded, not recovered *)
           let rec transient () =
             let f =
               Bist_inject.Fault_gen.random_fault rng ~word_bits:width
                 ~sequences:[ s ] ~misr_width
             in
             if Bist_inject.Fault_gen.is_permanent f then transient () else f
           in
           transient ()
         in
         let defense = Bist_hw.Session.hardened in
         let sync_rng = Bist_util.Rng.create 4 in
         let sync = Bist_hw.Sync.find_sequence ~rng:sync_rng circuit in
         let clean =
           Bist_hw.Session.run_exn ?sync ~defense ~capture:true ~n circuit [ s ]
         in
         let injector = Bist_hw.Injector.create fault in
         let faulty =
           Bist_hw.Session.run_exn ?sync ~defense ~injector ~capture:true ~n
             circuit [ s ]
         in
         let c = List.hd clean.Bist_hw.Session.per_sequence in
         let f = List.hd faulty.Bist_hw.Session.per_sequence in
         faulty.Bist_hw.Session.complete
         && f.applied_length = 8 * n * Tseq.length s
         && f.applied_length = c.applied_length
         && f.signature = c.signature
         && (match (c.applied, f.applied) with
            | Some ca, Some fa -> Tseq.equal ca fa
            | _ -> false)))

(* Parser fuzz: arbitrary junk must raise a clean error, never crash. *)
let test_parser_fuzz =
  Testutil.qcheck
    (QCheck.Test.make ~name:"parser never crashes on junk" ~count:300
       QCheck.(string_gen_of_size (Gen.int_range 0 60)
                 (Gen.oneofl [ 'a'; 'G'; '0'; '('; ')'; ','; '='; ' '; '\n'; '#'; 'D'; 'F' ]))
       (fun text ->
         match Bist_circuit.Bench_parser.parse_string ~name:"fuzz" text with
         | _ -> true
         | exception Bist_circuit.Bench_parser.Parse_error _ -> true
         | exception Failure _ -> true))

(* Fault_table agrees with the raw simulator outcome. *)
let test_fault_table_consistent () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in
  let table = Bist_fault.Fault_table.compute universe t0 in
  let outcome = Fsim.run universe t0 in
  Universe.iter
    (fun id _ ->
      let expected =
        if outcome.Fsim.det_time.(id) >= 0 then Some outcome.Fsim.det_time.(id)
        else None
      in
      Alcotest.(check (option int)) "udet" expected (Bist_fault.Fault_table.udet table id))
    universe

(* Edge cases. *)

let test_expand_empty () =
  let empty = Tseq.empty 3 in
  Alcotest.(check int) "expand empty is empty" 0
    (Tseq.length (Ops.expand ~n:4 empty))

let test_expand_single_vector () =
  let s = Tseq.of_strings [ "101" ] in
  let exp = Ops.expand ~n:1 s in
  Alcotest.(check int) "length 8" 8 (Tseq.length exp);
  (* S, ~S, S<<1, ~S<<1, then the reverse of those four *)
  Alcotest.(check (list string)) "vectors"
    [ "101"; "010"; "011"; "100"; "100"; "011"; "010"; "101" ]
    (Tseq.to_strings exp)

let test_table_separator () =
  let module At = Bist_util.Ascii_table in
  let t = At.create ~headers:[ ("h", At.Left) ] in
  At.add_row t [ "a" ];
  At.add_separator t;
  At.add_row t [ "b" ];
  let lines = String.split_on_char '\n' (At.render t) in
  Alcotest.(check int) "6 lines (incl. trailing)" 6 (List.length lines)

let test_bench_file_roundtrip () =
  let c = Bist_bench.S27.circuit () in
  let path = Filename.temp_file "bist" ".bench" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Bist_circuit.Bench_writer.to_file c path;
      let c2 = Bist_circuit.Bench_parser.parse_file path in
      Alcotest.(check string) "same name (from file basename)"
        (Filename.remove_extension (Filename.basename path))
        (Bist_circuit.Netlist.circuit_name c2);
      Alcotest.(check int) "same size" (Bist_circuit.Netlist.size c)
        (Bist_circuit.Netlist.size c2))

let test_area_minimum () =
  let a = Bist_hw.Area.estimate ~num_inputs:1 ~max_seq_len:1 ~n:1 () in
  Alcotest.(check int) "1 memory bit" 1 a.Bist_hw.Area.memory_bits;
  Alcotest.(check bool) "counters nonzero" true (a.address_counter_bits >= 1)

let test_robustness_spread () =
  let entry =
    { Bist_bench.Registry.name = "mini"; paper_name = "s298";
      circuit = Bist_bench.Teaching.counter3; scaled = false }
  in
  let r = Bist_harness.Experiment.robustness ~seeds:[ 1; 2 ] entry in
  Alcotest.(check bool) "verified under both seeds" true
    r.Bist_harness.Experiment.always_verified;
  Alcotest.(check bool) "mean within [min,max]" true
    (r.ratio_total.Bist_harness.Experiment.min
       <= r.ratio_total.Bist_harness.Experiment.mean
    && r.ratio_total.mean <= r.ratio_total.max)

let suite_edge =
  [
    Alcotest.test_case "expand empty" `Quick test_expand_empty;
    Alcotest.test_case "expand single vector" `Quick test_expand_single_vector;
    Alcotest.test_case "table separator" `Quick test_table_separator;
    Alcotest.test_case "bench file roundtrip" `Quick test_bench_file_roundtrip;
    Alcotest.test_case "area minimum" `Quick test_area_minimum;
    Alcotest.test_case "robustness spread" `Slow test_robustness_spread;
  ]

let suite =
  suite_edge
  @ [
    test_expansion_detects_superset;
    test_partial_expansion_detects_superset;
    test_scheme_sound_on_random_circuits;
    Alcotest.test_case "windows inside T0" `Quick test_windows_inside_t0;
    Alcotest.test_case "snapshot restore" `Quick test_snapshot_restore;
    Alcotest.test_case "state diff count" `Quick test_state_diff_count;
    Alcotest.test_case "controller finished error" `Quick test_controller_finished_error;
    test_recovery_preserves_session;
    test_parser_fuzz;
    Alcotest.test_case "fault table consistent" `Quick test_fault_table_consistent;
  ]
