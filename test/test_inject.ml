(* The fault-injection campaign is the robustness acceptance gate: under
   the hardened defense every injected fault must be corrected or
   detected — zero silent escapes — and disarming the parity code must
   demonstrably open escapes, proving the defense is load-bearing. *)

module Campaign = Bist_inject.Campaign
module Session = Bist_hw.Session

let s27 () =
  let e = Bist_bench.Registry.s27 in
  e.Bist_bench.Registry.circuit ()

let test_campaign_hardened_no_escapes () =
  let c = Campaign.run ~name:"s27" (s27 ()) in
  Alcotest.(check int) "200 faults" 200 (List.length c.Campaign.trials);
  Alcotest.(check bool) "sync found for s27" true c.sync_found;
  Alcotest.(check int) "zero escapes" 0 c.escaped;
  Alcotest.(check int) "zero benign (all faults effective)" 0 c.benign;
  Alcotest.(check int) "every fault corrected or detected" 200
    (c.corrected + c.detected)

let test_campaign_deterministic () =
  let a = Campaign.run ~name:"s27" (s27 ()) in
  let b = Campaign.run ~name:"s27" (s27 ()) in
  Alcotest.(check (list string)) "same faults, same outcomes"
    (List.map
       (fun (t : Campaign.trial) ->
         Bist_hw.Injector.fault_to_string t.fault ^ "/" ^ Campaign.outcome_name t.outcome)
       a.trials)
    (List.map
       (fun (t : Campaign.trial) ->
         Bist_hw.Injector.fault_to_string t.fault ^ "/" ^ Campaign.outcome_name t.outcome)
       b.trials)

let test_campaign_no_parity_escapes () =
  let config =
    { Campaign.default_config with
      defense = { Session.hardened with ecc = Bist_hw.Ecc.No_ecc }
    }
  in
  let c = Campaign.run ~config ~name:"s27" (s27 ()) in
  Alcotest.(check bool) "disabling parity opens escapes" true (c.escaped > 0);
  (* ...and every escape is a memory fault, invisible to the
     self-checking signature (which audits the corrupted readback). *)
  List.iter
    (fun (t : Campaign.trial) ->
      if t.outcome = Campaign.Escaped then
        match Bist_hw.Injector.kind_name t.fault with
        | "mem-flip" | "mem-stuck" -> ()
        | k -> Alcotest.failf "non-memory fault escaped: %s" k)
    c.trials

let test_campaign_undefended_all_escape () =
  let config =
    { Campaign.default_config with defense = Session.undefended }
  in
  let c = Campaign.run ~config ~name:"s27" (s27 ()) in
  Alcotest.(check int) "nothing corrected" 0 c.corrected;
  Alcotest.(check int) "nothing detected" 0 c.detected;
  Alcotest.(check int) "everything escapes" c.config.count c.escaped

let test_campaign_hamming_corrects_in_place () =
  (* SEC Hamming turns memory transients into in-place corrections:
     still zero escapes, and strictly fewer reloads than parity. *)
  let run ecc =
    let config =
      { Campaign.default_config with defense = { Session.hardened with ecc } }
    in
    Campaign.run ~config ~name:"s27" (s27 ())
  in
  let parity = run Bist_hw.Ecc.Parity in
  let hamming = run Bist_hw.Ecc.Hamming_sec in
  Alcotest.(check int) "hamming: zero escapes" 0 hamming.Campaign.escaped;
  let reloads c =
    List.fold_left
      (fun acc (t : Campaign.trial) -> acc + (t.attempts - 1))
      0 c.Campaign.trials
  in
  Alcotest.(check bool) "hamming reloads < parity reloads" true
    (reloads hamming < reloads parity)

let test_fault_gen_effective () =
  let rng = Bist_util.Rng.create 7 in
  let s = Bist_inject.Fault_gen.distinct_word_sequence rng ~width:6 ~length:8 in
  Alcotest.(check int) "length" 8 (Bist_logic.Tseq.length s);
  let seen = Hashtbl.create 8 in
  Bist_logic.Tseq.iter
    (fun v ->
      let key = Bist_logic.Vector.to_string v in
      Alcotest.(check bool) ("distinct " ^ key) false (Hashtbl.mem seen key);
      Hashtbl.add seen key ())
    s;
  List.iter
    (fun f ->
      match f with
      | Bist_hw.Injector.Mem_flip { word; _ } | Bist_hw.Injector.Mem_stuck { word; _ }
        ->
        Alcotest.(check bool) "memory fault inside sequence" true (word < 8)
      | Bist_hw.Injector.Addr_stuck { bit; _ } ->
        Alcotest.(check bool) "address bit below depth" true (1 lsl bit < 8)
      | Bist_hw.Injector.Early_termination { dropped } ->
        Alcotest.(check bool) "drops at least one cycle" true (dropped >= 1)
      | Bist_hw.Injector.Late_termination { extra } ->
        Alcotest.(check bool) "adds at least one cycle" true (extra >= 1)
      | Bist_hw.Injector.Misr_corrupt { mask } ->
        Alcotest.(check bool) "nonzero mask" true (mask <> 0))
    (Bist_inject.Fault_gen.faults rng ~count:100 ~word_bits:6 ~sequences:[ s ]
       ~misr_width:4)

let suite =
  [
    Alcotest.test_case "hardened campaign: no escapes" `Quick
      test_campaign_hardened_no_escapes;
    Alcotest.test_case "campaign deterministic" `Quick test_campaign_deterministic;
    Alcotest.test_case "no-parity campaign: escapes" `Quick
      test_campaign_no_parity_escapes;
    Alcotest.test_case "undefended campaign: all escape" `Quick
      test_campaign_undefended_all_escape;
    Alcotest.test_case "hamming corrects in place" `Quick
      test_campaign_hamming_corrects_in_place;
    Alcotest.test_case "fault generator effective" `Quick test_fault_gen_effective;
  ]
