(* Differential-oracle suite for the PPSFP fault-simulation core.

   Three independent implementations must produce the same fault table:

   - {!Bist_sim.Ppsfp} (the default kernel: shared fault-free trace,
     event-driven levelized evaluation, fault dropping);
   - {!Bist_sim.Packed_sim} (the original full-sweep packed kernel,
     selected with BIST_FSIM=packed);
   - {!Bist_sim.Event_sim} on a mutated netlist: each fault is compiled
     into the circuit structurally (stem stuck-at becomes a constant
     driver, a fanout-branch stuck-at rewires one consumer pin to a
     constant node) and the scalar simulator's primary outputs are
     compared against the fault-free run.

   The first two run over the whole universe at several pool widths and
   on both sides of the sharding crossover; the third is scalar and
   per-fault, so it covers s27 and a band of small synthetics. *)

module Tseq = Bist_logic.Tseq
module Vector = Bist_logic.Vector
module T = Bist_logic.Ternary
module Rng = Bist_util.Rng
module Netlist = Bist_circuit.Netlist
module Gate = Bist_circuit.Gate
module Builder = Bist_circuit.Builder
module Universe = Bist_fault.Universe
module Fault = Bist_fault.Fault
module Fsim = Bist_fault.Fsim
module Pool = Bist_parallel.Pool
module Tune = Bist_parallel.Tune
module Ppsfp = Bist_sim.Ppsfp

let pool2 = Pool.create ~jobs:2 ()
let pool4 = Pool.create ~jobs:4 ()

(* Force every call through the requested kernel regardless of the
   environment the suite runs under. *)
let with_fsim impl f =
  let old = Sys.getenv_opt "BIST_FSIM" in
  Unix.putenv "BIST_FSIM" impl;
  Fun.protect
    ~finally:(fun () -> Unix.putenv "BIST_FSIM" (Option.value old ~default:""))
    f

(* Sharding forced into [jobs] chunks / suppressed entirely — the two
   sides of the crossover, pinned independently of this host's cores. *)
let tune_shard () = Tune.create ~min_units:1 ()
let tune_seq () = Tune.create ~min_units:max_int ()

let det_times ?pool ?tune impl universe seq =
  with_fsim impl (fun () ->
      let outcome = Fsim.run ?pool ?tune universe seq in
      outcome.Fsim.det_time)

let seq_for circuit ~seed ~len =
  let rng = Rng.create seed in
  Tseq.random_binary rng ~width:(Netlist.num_inputs circuit) ~length:len

(* PPSFP vs Packed_sim on the 25 seeded synthetics, at widths 1/2/4 and
   across the crossover boundary. *)
let test_synthetics_ppsfp_vs_packed () =
  for seed = 0 to 24 do
    let circuit = Testutil.small_circuit (17 * seed) in
    let universe = Universe.collapsed circuit in
    let seq = seq_for circuit ~seed:(seed + 1) ~len:(10 + (seed mod 25)) in
    let reference = det_times "packed" universe seq in
    let label variant = Printf.sprintf "seed %d: %s == packed" seed variant in
    Alcotest.(check (array int))
      (label "ppsfp sequential")
      reference
      (det_times ~tune:(tune_seq ()) "ppsfp" universe seq);
    Alcotest.(check (array int))
      (label "ppsfp jobs=2 sharded")
      reference
      (det_times ~pool:pool2 ~tune:(tune_shard ()) "ppsfp" universe seq);
    Alcotest.(check (array int))
      (label "ppsfp jobs=4 sharded")
      reference
      (det_times ~pool:pool4 ~tune:(tune_shard ()) "ppsfp" universe seq);
    Alcotest.(check (array int))
      (label "ppsfp jobs=4 below crossover")
      reference
      (det_times ~pool:pool4 ~tune:(tune_seq ()) "ppsfp" universe seq);
    Alcotest.(check (array int))
      (label "packed jobs=4 sharded")
      reference
      (det_times ~pool:pool4 ~tune:(tune_shard ()) "packed" universe seq)
  done

(* Same cross-check on every registry circuit. *)
let test_registry_ppsfp_vs_packed () =
  List.iter
    (fun (entry : Bist_bench.Registry.entry) ->
      let circuit = entry.circuit () in
      let universe = Universe.collapsed circuit in
      let seq = seq_for circuit ~seed:23 ~len:24 in
      let reference = det_times "packed" universe seq in
      Alcotest.(check (array int))
        (entry.name ^ ": ppsfp == packed")
        reference
        (det_times ~tune:(tune_seq ()) "ppsfp" universe seq);
      Alcotest.(check (array int))
        (entry.name ^ ": ppsfp jobs=2 == packed")
        reference
        (det_times ~pool:pool2 ~tune:(tune_shard ()) "ppsfp" universe seq))
    (Bist_bench.Registry.all ())

(* The qcheck property: any synthetic circuit, any binary sequence, any
   width/crossover side — same table. *)
let ppsfp_differential_property =
  Testutil.qcheck
    (QCheck.Test.make ~name:"ppsfp == packed (random circuit/seq/width)"
       ~count:40 Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let seq = seq_for circuit ~seed:sseed ~len in
         let reference = det_times "packed" universe seq in
         let pool, tune =
           match (cseed + sseed + len) mod 3 with
           | 0 -> (None, tune_seq ())
           | 1 -> (Some pool2, tune_shard ())
           | _ -> (Some pool4, tune_shard ())
         in
         reference = det_times ?pool ~tune "ppsfp" universe seq))

(* --- structural fault compilation for the Event_sim oracle ---------- *)

let const_name = "__sa_const"
let orig_prefix = "__sa_orig_"

(* Rebuild [circuit] with [fault] baked into the structure. *)
let mutant circuit (fault : Fault.t) =
  let b = Builder.create ~name:(Netlist.circuit_name circuit ^ "_mutant") in
  let stuck_kind =
    match fault.stuck with
    | T.One -> Gate.Const1
    | T.Zero -> Gate.Const0
    | T.X -> invalid_arg "mutant: stuck-at-X"
  in
  Builder.add_gate b ~output:const_name stuck_kind [];
  let stem =
    match fault.site with Fault.Output n -> Some n | Fault.Pin _ -> None
  in
  Array.iter
    (fun node ->
      match stem with
      | Some n when n = node ->
        (* The faulty input keeps its declaration (sequence width and
           input order must not change) under a fresh unused name; the
           original name becomes the constant. *)
        Builder.add_input b (orig_prefix ^ Netlist.name circuit node)
      | _ -> Builder.add_input b (Netlist.name circuit node))
    (Netlist.inputs circuit);
  for node = 0 to Netlist.size circuit - 1 do
    let kind = Netlist.kind circuit node in
    if kind <> Gate.Input then begin
      let fanin_names =
        Array.to_list
          (Array.mapi
             (fun pin d ->
               match fault.site with
               | Fault.Pin { gate; pin = p } when gate = node && p = pin ->
                 const_name
               | _ -> Netlist.name circuit d)
             (Netlist.fanins circuit node))
      in
      match stem with
      | Some n when n = node ->
        (* Stem fault on a gate or flip-flop output: the original gate
           survives under a fresh name (its value is simply unobserved),
           the original name becomes the constant every consumer and
           primary output reads. *)
        Builder.add_gate b ~output:(orig_prefix ^ Netlist.name circuit node)
          kind fanin_names;
        Builder.add_gate b ~output:(Netlist.name circuit node) stuck_kind []
      | _ -> Builder.add_gate b ~output:(Netlist.name circuit node) kind fanin_names
    end
    else if stem = Some node then
      Builder.add_gate b ~output:(Netlist.name circuit node) stuck_kind []
  done;
  Array.iter
    (fun po -> Builder.add_output b (Netlist.name circuit po))
    (Netlist.outputs circuit);
  Builder.finalize b

(* First time unit where some primary output is binary in the fault-free
   run and the opposite binary value in the faulty run — the paper's
   detection condition, evaluated on scalar simulations. *)
let scalar_det_time good bad =
  let len = Array.length good in
  let npo = if len = 0 then 0 else Vector.width good.(0) in
  let rec go u =
    if u >= len then -1
    else begin
      let differs = ref false in
      for i = 0 to npo - 1 do
        match (Vector.get good.(u) i, Vector.get bad.(u) i) with
        | T.One, T.Zero | T.Zero, T.One -> differs := true
        | _ -> ()
      done;
      if !differs then u else go (u + 1)
    end
  in
  go 0

let check_event_sim_oracle circuit ~seed ~len =
  let universe = Universe.collapsed circuit in
  let seq = seq_for circuit ~seed ~len in
  let good = Bist_sim.Event_sim.run circuit seq in
  let table = det_times "ppsfp" universe seq in
  Universe.iter
    (fun id fault ->
      let bad = Bist_sim.Event_sim.run (mutant circuit fault) seq in
      Alcotest.(check int)
        (Printf.sprintf "%s fault %s" (Netlist.circuit_name circuit)
           (Fault.name circuit fault))
        (scalar_det_time good bad) table.(id))
    universe

let test_event_sim_oracle_s27 () =
  check_event_sim_oracle (Bist_bench.S27.circuit ()) ~seed:3 ~len:32

let test_event_sim_oracle_synthetics () =
  List.iter
    (fun cseed ->
      check_event_sim_oracle (Testutil.small_circuit cseed) ~seed:(cseed + 5)
        ~len:20)
    [ 1; 2; 3; 4; 5 ]

(* --- kernel-level properties ---------------------------------------- *)

(* The event core must actually skip quiescent work: a single fault at
   the very end of the topological order disturbs almost nothing, so the
   evaluation count stays far below gates × steps. *)
let test_event_core_skips_quiescent_levels () =
  let circuit = (Option.get (Bist_bench.Registry.find "x298")).circuit () in
  let len = 64 in
  let seq = seq_for circuit ~seed:9 ~len in
  let sim = Ppsfp.create circuit in
  let tr = Ppsfp.trace sim seq in
  let topo = Netlist.topo_order circuit in
  let last = topo.(Array.length topo - 1) in
  Ppsfp.add_output_force sim last ~mask:2 T.One;
  Ppsfp.reset sim;
  for u = 0 to len - 1 do
    Ppsfp.step sim tr u
  done;
  let budget = Netlist.num_gates circuit * len / 4 in
  Alcotest.(check bool)
    (Printf.sprintf "evaluations %d < %d" (Ppsfp.evaluations sim) budget)
    true
    (Ppsfp.evaluations sim < budget);
  Alcotest.(check int) "trace fully materialized" len (Ppsfp.trace_length tr);
  Alcotest.(check int) "all steps event-driven" len (Ppsfp.event_steps sim)

(* Dropping a detected lane must leave the other lanes bit-for-bit
   untouched: simulate two faults together, drop one mid-sequence, and
   the survivor's detection behaviour must match a solo run. *)
let test_drop_lanes_preserves_other_lanes () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Universe.collapsed circuit in
  let seq = seq_for circuit ~seed:12 ~len:24 in
  let reference = det_times "packed" universe seq in
  (* The production path drops on detection; equality with the packed
     kernel (which never drops) is exactly the preservation property,
     fault by fault. *)
  Alcotest.(check (array int)) "dropping == never dropping" reference
    (det_times "ppsfp" universe seq)

let test_lane0_reserved_and_validation () =
  let circuit = Bist_bench.S27.circuit () in
  let sim = Ppsfp.create circuit in
  Alcotest.check_raises "lane 0 reserved"
    (Invalid_argument "Ppsfp: lane 0 is reserved for the fault-free machine")
    (fun () -> Ppsfp.add_output_force sim 0 ~mask:1 T.One);
  let seq = seq_for circuit ~seed:1 ~len:4 in
  let tr = Ppsfp.trace sim seq in
  Alcotest.check_raises "step beyond the sequence"
    (Invalid_argument "Ppsfp.step: time step beyond the sequence") (fun () ->
      Ppsfp.step sim tr 4);
  let other_circuit = Testutil.small_circuit 0 in
  let other = Ppsfp.create other_circuit in
  let seq2 = seq_for other_circuit ~seed:2 ~len:4 in
  let tr2 = Ppsfp.trace other seq2 in
  Alcotest.check_raises "trace/circuit mismatch"
    (Invalid_argument "Ppsfp.step: trace belongs to a different circuit")
    (fun () -> Ppsfp.step sim tr2 0)

(* BIST_FSIM validation: unknown values warn and fall back to ppsfp. *)
let test_bist_fsim_fallback () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Universe.collapsed circuit in
  let seq = seq_for circuit ~seed:4 ~len:12 in
  let reference = det_times "ppsfp" universe seq in
  Alcotest.(check (array int)) "unknown BIST_FSIM falls back to ppsfp"
    reference
    (det_times "no-such-kernel" universe seq)

let suite =
  [
    Alcotest.test_case "synthetics: ppsfp == packed at widths 1/2/4" `Slow
      test_synthetics_ppsfp_vs_packed;
    Alcotest.test_case "registry: ppsfp == packed" `Slow
      test_registry_ppsfp_vs_packed;
    ppsfp_differential_property;
    Alcotest.test_case "event-sim oracle on s27 (structural mutants)" `Quick
      test_event_sim_oracle_s27;
    Alcotest.test_case "event-sim oracle on synthetics" `Slow
      test_event_sim_oracle_synthetics;
    Alcotest.test_case "event core skips quiescent levels" `Quick
      test_event_core_skips_quiescent_levels;
    Alcotest.test_case "fault dropping preserves other lanes" `Quick
      test_drop_lanes_preserves_other_lanes;
    Alcotest.test_case "ppsfp argument validation" `Quick
      test_lane0_reserved_and_validation;
    Alcotest.test_case "BIST_FSIM fallback" `Quick test_bist_fsim_fallback;
  ]
