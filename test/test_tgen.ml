(* Suites for Bist_tgen: the T0 engine and its static compaction, plus
   the synthetic benchmark generator and registry they run against. *)

module Tseq = Bist_logic.Tseq
module Bitset = Bist_util.Bitset
module Universe = Bist_fault.Universe
module Fsim = Bist_fault.Fsim
module Engine = Bist_tgen.Engine
module Compaction = Bist_tgen.Compaction

let counter_universe () = Universe.collapsed (Bist_bench.Teaching.counter3 ())

let test_engine_detects_something () =
  let universe = counter_universe () in
  let rng = Bist_util.Rng.create 11 in
  let t0, stats = Engine.generate ~rng universe in
  Alcotest.(check bool) "nonempty" true (Tseq.length t0 > 0);
  Alcotest.(check bool) "detects most counter faults" true
    (float_of_int stats.Engine.detected
     >= 0.7 *. float_of_int stats.total_faults);
  (* stats must agree with an independent fault simulation *)
  let check = Fsim.run universe t0 in
  Alcotest.(check int) "stats consistent"
    (Bitset.cardinal check.Fsim.detected)
    stats.detected

let test_engine_deterministic () =
  let universe = counter_universe () in
  let gen () =
    let rng = Bist_util.Rng.create 11 in
    fst (Engine.generate ~rng universe)
  in
  Testutil.check_seq "same seed, same T0" (gen ()) (gen ())

let test_engine_respects_max_length () =
  let universe = counter_universe () in
  let circuit = Bist_bench.Teaching.counter3 () in
  let config = { (Engine.default_config circuit) with Engine.max_length = 40 } in
  let rng = Bist_util.Rng.create 11 in
  let t0, _ = Engine.generate ~config ~rng universe in
  (* one segment may straddle the cap *)
  Alcotest.(check bool) "capped" true
    (Tseq.length t0 <= 40 + config.Engine.segment_length)

let test_compaction_preserves_coverage () =
  let universe = counter_universe () in
  let rng = Bist_util.Rng.create 11 in
  let t0, _ = Engine.generate ~rng universe in
  let before = (Fsim.run universe t0).Fsim.detected in
  let t0', stats = Compaction.compact universe t0 in
  let after = (Fsim.run universe t0').Fsim.detected in
  Alcotest.(check bool) "coverage superset" true (Bitset.subset before after);
  Alcotest.(check bool) "not longer" true (Tseq.length t0' <= Tseq.length t0);
  Alcotest.(check int) "stats lengths" (Tseq.length t0) stats.Compaction.initial_length;
  Alcotest.(check int) "stats final" (Tseq.length t0') stats.final_length

let test_compaction_budget () =
  let universe = counter_universe () in
  let rng = Bist_util.Rng.create 11 in
  let t0, _ = Engine.generate ~rng universe in
  let _, stats = Compaction.compact ~max_trials:5 universe t0 in
  Alcotest.(check bool) "trial budget respected" true (stats.Compaction.trials <= 5)

let test_compaction_idempotent_coverage =
  Testutil.qcheck
    (QCheck.Test.make ~name:"compaction sound on random circuits" ~count:10
       Testutil.circuit_and_seq
       (fun (cseed, sseed, len) ->
         let circuit = Testutil.small_circuit cseed in
         let universe = Universe.collapsed circuit in
         let rng = Bist_util.Rng.create sseed in
         let t0 =
           Tseq.random_binary rng
             ~width:(Bist_circuit.Netlist.num_inputs circuit)
             ~length:(len + 5)
         in
         let before = (Fsim.run universe t0).Fsim.detected in
         let t0', _ = Compaction.compact universe t0 in
         Bitset.subset before (Fsim.run universe t0').Fsim.detected))

(* Synth / registry *)

let test_synth_matches_profile () =
  let p =
    { Bist_bench.Synth.name = "prof"; num_inputs = 5; num_outputs = 4;
      num_ffs = 6; num_gates = 60; sync_fraction = 0.8; seed = 77;
      style = Bist_bench.Synth.Random }
  in
  let c = Bist_bench.Synth.generate p in
  Alcotest.(check int) "PIs exact" 5 (Bist_circuit.Netlist.num_inputs c);
  Alcotest.(check int) "POs exact" 4 (Bist_circuit.Netlist.num_outputs c);
  Alcotest.(check int) "FFs exact" 6 (Bist_circuit.Netlist.num_dffs c);
  let gates = Bist_circuit.Netlist.num_gates c in
  Alcotest.(check bool) "gate count near target" true
    (gates >= 40 && gates <= 90)

let test_synth_deterministic () =
  let p = Testutil.small_profile 5 in
  let a = Bist_bench.Synth.generate p and b = Bist_bench.Synth.generate p in
  Alcotest.(check string) "same netlist"
    (Bist_circuit.Bench_writer.to_string a)
    (Bist_circuit.Bench_writer.to_string b)

let test_synth_everything_observable () =
  (* No dangling combinational gate: every non-PO node drives something. *)
  let c = Testutil.small_circuit 9 in
  for n = 0 to Bist_circuit.Netlist.size c - 1 do
    if Bist_circuit.Netlist.kind c n <> Bist_circuit.Gate.Input then
      Alcotest.(check bool)
        (Printf.sprintf "node %s observable" (Bist_circuit.Netlist.name c n))
        true
        (Bist_circuit.Netlist.fanout_count c n > 0)
  done

let test_synth_roundtrips_through_bench =
  Testutil.qcheck
    (QCheck.Test.make ~name:"synthetic circuits roundtrip through .bench" ~count:20
       QCheck.(int_range 0 200)
       (fun seed ->
         let c = Testutil.small_circuit seed in
         let text = Bist_circuit.Bench_writer.to_string c in
         let c2 =
           Bist_circuit.Bench_parser.parse_string
             ~name:(Bist_circuit.Netlist.circuit_name c)
             text
         in
         Bist_circuit.Bench_writer.to_string c2 = text))

let test_registry () =
  Alcotest.(check int) "suite size" 12
    (List.length (Bist_bench.Registry.evaluation_suite ()));
  Alcotest.(check bool) "find by paper name" true
    (Option.is_some (Bist_bench.Registry.find "s298"));
  Alcotest.(check bool) "find by our name" true
    (Option.is_some (Bist_bench.Registry.find "x298"));
  Alcotest.(check bool) "unknown" true (Bist_bench.Registry.find "zzz" = None);
  (* every registry circuit builds and validates *)
  List.iter
    (fun (e : Bist_bench.Registry.entry) ->
      if not e.scaled then begin
        let c = e.circuit () in
        Alcotest.(check bool) (e.name ^ " nonempty") true
          (Bist_circuit.Netlist.num_gates c > 0)
      end)
    (List.filteri (fun i _ -> i < 6) (Bist_bench.Registry.evaluation_suite ()))

let suite =
  [
    Alcotest.test_case "engine detects" `Quick test_engine_detects_something;
    Alcotest.test_case "engine deterministic" `Quick test_engine_deterministic;
    Alcotest.test_case "engine max length" `Quick test_engine_respects_max_length;
    Alcotest.test_case "compaction preserves coverage" `Quick
      test_compaction_preserves_coverage;
    Alcotest.test_case "compaction budget" `Quick test_compaction_budget;
    test_compaction_idempotent_coverage;
    Alcotest.test_case "synth matches profile" `Quick test_synth_matches_profile;
    Alcotest.test_case "synth deterministic" `Quick test_synth_deterministic;
    Alcotest.test_case "synth observable" `Quick test_synth_everything_observable;
    test_synth_roundtrips_through_bench;
    Alcotest.test_case "registry" `Quick test_registry;
  ]
