(* The bistd daemon's building blocks, attacked from below.

   The headline suite is the seeded-mutation frame fuzz: valid protocol
   frames are truncated, length-corrupted and kind-scrambled, then fed
   through the decoder exactly as the server feeds network bytes. Every
   mutant must either decode or raise [Frame.Protocol_error] — any other
   exception would crash the daemon instead of producing a typed [Error]
   reply for one client. The rest covers the frame codec under
   adversarial chunking, the protocol codec roundtrip, the backoff
   policy, the bounded admission queue, and the worker runner's
   checkpoint/resume equivalence. *)

module Rng = Bist_util.Rng
module Frame = Bist_daemon.Frame
module Protocol = Bist_daemon.Protocol
module Backoff = Bist_daemon.Backoff
module Admission = Bist_daemon.Admission
module Runner = Bist_daemon.Runner
module Sandbox = Bist_daemon.Sandbox

(* ------------------------------------------------------------- frames *)

(* Split [s] into random chunks and feed them one by one: the decoder
   must produce the same payloads no matter how the network fragments
   the byte stream. *)
let feed_in_chunks rng dec s =
  let n = String.length s in
  let pos = ref 0 in
  let out = ref [] in
  let drain () =
    let rec go () =
      match Frame.Decoder.next dec with
      | Some p ->
        out := p :: !out;
        go ()
      | None -> ()
    in
    go ()
  in
  while !pos < n do
    let len = min (n - !pos) (1 + Rng.int rng 7) in
    Frame.Decoder.feed dec (String.sub s !pos len);
    pos := !pos + len;
    drain ()
  done;
  List.rev !out

let test_frame_roundtrip () =
  let rng = Rng.create 11 in
  for _ = 1 to 50 do
    let payloads =
      List.init (1 + Rng.int rng 5) (fun _ ->
          String.init (Rng.int rng 64) (fun _ -> Char.chr (Rng.int rng 256)))
    in
    let stream = String.concat "" (List.map Frame.encode payloads) in
    let dec = Frame.Decoder.create () in
    let got = feed_in_chunks rng dec stream in
    Alcotest.(check (list string)) "payloads survive chunking" payloads got;
    Frame.Decoder.finish dec
  done

let test_frame_oversized () =
  let dec = Frame.Decoder.create () in
  let prefix = Bytes.create 4 in
  Bytes.set_int32_le prefix 0 0x7FFFFFFFl;
  match Frame.Decoder.feed dec (Bytes.to_string prefix) with
  | () -> Alcotest.fail "oversized length prefix was accepted"
  | exception Frame.Protocol_error _ -> ()

let test_frame_truncation_detected () =
  let dec = Frame.Decoder.create () in
  let frame = Frame.encode "hello" in
  Frame.Decoder.feed dec (String.sub frame 0 (String.length frame - 1));
  Alcotest.(check bool) "incomplete frame yields nothing" true
    (Frame.Decoder.next dec = None);
  match Frame.Decoder.finish dec with
  | () -> Alcotest.fail "truncated stream passed finish"
  | exception Frame.Protocol_error _ -> ()

(* ----------------------------------------------------------- protocol *)

(* A small genuine payload for the Submit corpus: inline netlists must
   survive the codec and feed the fuzz mutants like every other shape. *)
let s27_bench_text =
  match Bist_bench.Loader.find_named "s27" with
  | Some c -> Bist_circuit.Bench_writer.to_string c
  | None -> assert false

let sample_requests =
  [
    Protocol.Ping { version = Protocol.version };
    Protocol.Ping { version = 1 };
    Protocol.Submit
      { tenant = "alice"; deadline = None;
        spec =
          Protocol.Tgen
            { circuit = Protocol.Named "s27"; seed = 7; directed = 30;
              trials = 150 } };
    Protocol.Submit
      { tenant = "bob"; deadline = Some 2.5;
        spec =
          Protocol.Faultsim
            { circuit = Protocol.Named "x298"; vectors = "1010\n0111\n" } };
    Protocol.Submit
      { tenant = ""; deadline = Some 0.125;
        spec =
          Protocol.Inject
            { circuit = Protocol.Named "s27"; seed = 5; count = 120; n = 2 } };
    Protocol.Submit
      { tenant = "carol"; deadline = None;
        spec =
          Protocol.Tgen
            { circuit =
                Protocol.Inline
                  { name = "s27.bench"; format = Protocol.Bench;
                    text = s27_bench_text };
              seed = 7; directed = 30; trials = 150 } };
    Protocol.Submit
      { tenant = "carol"; deadline = Some 9.0;
        spec =
          Protocol.Faultsim
            { circuit =
                Protocol.Inline
                  { name = "tiny.blif"; format = Protocol.Blif;
                    text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n.end\n" };
              vectors = "1\n0\n" } };
    Protocol.Status { id = 3 };
    Protocol.Wait { id = 99 };
    Protocol.Stats;
    Protocol.Shutdown;
    Protocol.Quarantine_list;
    Protocol.Quarantine_release { id = 7 };
  ]

let sample_responses =
  [
    Protocol.Pong;
    Protocol.Unsupported_version { server = 2; client = 1 };
    Protocol.Accepted { id = 12 };
    Protocol.Rejected
      { reason = Protocol.Queue_full; message = "queue is full" };
    Protocol.Rejected { reason = Protocol.Tenant_quota; message = "quota" };
    Protocol.Rejected { reason = Protocol.Draining; message = "draining" };
    Protocol.Job_status { id = 4; state = "running"; attempts = 1 };
    Protocol.Result { id = 4; output = "0101\n1110\n" };
    Protocol.Failed { id = 4; reason = "deadline exceeded" };
    Protocol.Quarantined
      { id = 9; reason = "crashed 3 distinct worker(s) (last: SIGSEGV)" };
    Protocol.Quarantine_report [];
    Protocol.Quarantine_report
      [
        { Protocol.id = 9; tenant = "mallory"; job = "tgen";
          circuit = "bomb.bench"; crashes = 3; reason = "killed by SIGXCPU" };
        { Protocol.id = 11; tenant = "alice"; job = "inject"; circuit = "s27";
          crashes = 4; reason = "exit 1" };
      ];
    Protocol.Stats_report "counter value\n";
    Protocol.Shutting_down;
    Protocol.Error { message = "unknown request kind 42" };
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun req ->
      let got = Protocol.decode_request (Protocol.encode_request req) in
      Alcotest.(check bool) "request roundtrips" true (got = req))
    sample_requests;
  List.iter
    (fun resp ->
      let got = Protocol.decode_response (Protocol.encode_response resp) in
      Alcotest.(check bool) "response roundtrips" true (got = resp))
    sample_responses

let contains text needle =
  let nl = String.length needle and tl = String.length text in
  let rec go i = i + nl <= tl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_legacy_ping_decodes () =
  (* The PR 6 wire form of Ping was the bare kind byte. It must still
     decode — as a version-1 claim — so an old client gets the typed
     Unsupported_version reply, not a protocol error. *)
  Alcotest.(check bool) "empty-body ping is v1" true
    (Protocol.decode_request "\x00" = Protocol.Ping { version = 1 });
  let v2 = Protocol.encode_request (Protocol.Ping { version = 2 }) in
  Alcotest.(check bool) "v2 ping carries its version" true
    (Protocol.decode_request v2 = Protocol.Ping { version = 2 })

let test_oversized_netlist_rejected () =
  (* The length prefix alone must condemn an over-cap payload: we build
     the encoded form by hand so the test never allocates the "real"
     oversized submit through the public encoder twice. *)
  let text = String.make (Protocol.max_netlist_bytes + 1) 'x' in
  let req =
    Protocol.Submit
      { tenant = "evil"; deadline = None;
        spec =
          Protocol.Tgen
            { circuit =
                Protocol.Inline
                  { name = "bomb"; format = Protocol.Bench; text };
              seed = 1; directed = 0; trials = 1 } }
  in
  (match Protocol.decode_request (Protocol.encode_request req) with
  | (_ : Protocol.request) -> Alcotest.fail "over-cap netlist decoded"
  | exception Frame.Protocol_error msg ->
    Alcotest.(check bool) "error names the cap" true (contains msg "cap"));
  (* One byte under the cap decodes fine: the bound is exact. *)
  let text = String.make Protocol.max_netlist_bytes 'x' in
  let req =
    Protocol.Submit
      { tenant = "big"; deadline = None;
        spec =
          Protocol.Tgen
            { circuit =
                Protocol.Inline
                  { name = "big"; format = Protocol.Bench; text };
              seed = 1; directed = 0; trials = 1 } }
  in
  Alcotest.(check bool) "at-cap netlist decodes" true
    (Protocol.decode_request (Protocol.encode_request req) = req)

let test_frame_cap_boundary () =
  (* Exactly at the 16 MiB frame cap: encode/decode round-trips. One
     byte over: typed rejection on encode, and the decoder rejects the
     bare length prefix before buffering anything. *)
  let at_cap = String.make Frame.max_payload 'y' in
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Frame.encode at_cap);
  (match Frame.Decoder.next dec with
  | Some p ->
    Alcotest.(check int) "cap-sized payload survives" Frame.max_payload
      (String.length p)
  | None -> Alcotest.fail "cap-sized frame did not decode");
  Frame.Decoder.finish dec;
  let under_cap = String.make (Frame.max_payload - 1) 'y' in
  let dec = Frame.Decoder.create () in
  Frame.Decoder.feed dec (Frame.encode under_cap);
  Alcotest.(check bool) "cap-1 payload survives" true
    (Frame.Decoder.next dec = Some under_cap);
  Frame.Decoder.finish dec;
  (match Frame.encode (String.make (Frame.max_payload + 1) 'y') with
  | (_ : string) -> Alcotest.fail "cap+1 payload encoded"
  | exception Frame.Protocol_error _ -> ());
  let prefix = Bytes.create 4 in
  Bytes.set_int32_le prefix 0 (Int32.of_int (Frame.max_payload + 1));
  let dec = Frame.Decoder.create () in
  match Frame.Decoder.feed dec (Bytes.to_string prefix) with
  | () -> Alcotest.fail "cap+1 length prefix accepted"
  | exception Frame.Protocol_error _ -> ()

(* The seeded-mutation fuzz gate. Mutants of valid frames — flipped
   bytes, truncations, corrupted length prefixes, scrambled kind bytes,
   random splices — must decode or raise [Frame.Protocol_error], never
   anything else. *)

let mutations = 400
let fuzz_seed = 0xB15D

let flip_byte rng s =
  if String.length s = 0 then s
  else begin
    let b = Bytes.of_string s in
    let i = Rng.int rng (Bytes.length b) in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Rng.int rng 8)));
    Bytes.to_string b
  end

let truncate rng s =
  if String.length s = 0 then s
  else String.sub s 0 (Rng.int rng (String.length s))

let corrupt_length rng s =
  if String.length s < 4 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set_int32_le b 0 (Int32.of_int (Rng.int rng 0x7FFFFFFF));
    Bytes.to_string b
  end

let scramble_kind rng s =
  if String.length s < 5 then s
  else begin
    let b = Bytes.of_string s in
    Bytes.set b 4 (Char.chr (Rng.int rng 256));
    Bytes.to_string b
  end

let splice rng a b =
  let cut s = String.sub s 0 (Rng.int rng (String.length s + 1)) in
  let tail s =
    let i = Rng.int rng (String.length s + 1) in
    String.sub s i (String.length s - i)
  in
  cut a ^ tail b

let mutate rng corpus s =
  match Rng.int rng 5 with
  | 0 -> flip_byte rng s
  | 1 -> truncate rng s
  | 2 -> corrupt_length rng s
  | 3 -> scramble_kind rng s
  | _ -> splice rng s (Rng.choose rng corpus)

let test_fuzz_frames () =
  let corpus =
    Array.of_list
      (List.map (fun r -> Frame.encode (Protocol.encode_request r)) sample_requests
      @ List.map (fun r -> Frame.encode (Protocol.encode_response r)) sample_responses)
  in
  let rng = Rng.create fuzz_seed in
  let total = ref 0 and decoded = ref 0 and rejected = ref 0 in
  for i = 1 to mutations do
    incr total;
    let base = Rng.choose rng corpus in
    let text = ref base in
    for _ = 1 to 1 + Rng.int rng 3 do
      text := mutate rng corpus !text
    done;
    match
      let dec = Frame.Decoder.create () in
      Frame.Decoder.feed dec !text;
      let rec drain () =
        match Frame.Decoder.next dec with
        | Some payload ->
          (* A complete frame must then decode as one of the two message
             directions or raise the typed error. *)
          (try ignore (Protocol.decode_request payload)
           with Frame.Protocol_error _ -> (
             try ignore (Protocol.decode_response payload)
             with Frame.Protocol_error _ -> ()));
          drain ()
        | None -> ()
      in
      drain ();
      Frame.Decoder.finish dec
    with
    | () -> incr decoded
    | exception Frame.Protocol_error _ -> incr rejected
    | exception exn ->
      Alcotest.failf "mutant #%d escaped the codec with %s (%d bytes)" i
        (Printexc.to_string exn) (String.length !text)
  done;
  Alcotest.(check bool)
    (Printf.sprintf "ran %d mutants (>= 300)" !total)
    true (!total >= 300);
  Alcotest.(check bool) "some mutants were rejected" true (!rejected > 0);
  Alcotest.(check bool) "some mutants still decoded" true (!decoded > 0)

(* ------------------------------------------------------------ backoff *)

let test_backoff_growth () =
  let p = { Backoff.initial = 0.1; multiplier = 2.0; max_delay = 0.5; budget = 5 } in
  let d a = Option.get (Backoff.delay p ~attempt:a) in
  Alcotest.(check (float 1e-9)) "attempt 1" 0.1 (d 1);
  Alcotest.(check (float 1e-9)) "attempt 2" 0.2 (d 2);
  Alcotest.(check (float 1e-9)) "attempt 3" 0.4 (d 3);
  Alcotest.(check (float 1e-9)) "attempt 4 capped" 0.5 (d 4);
  Alcotest.(check (float 1e-9)) "attempt 5 capped" 0.5 (d 5);
  Alcotest.(check bool) "budget exhausted" true
    (Backoff.delay p ~attempt:6 = None);
  Alcotest.(check bool) "attempt 0 rejected" true
    (match Backoff.delay p ~attempt:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_backoff_validate () =
  Alcotest.(check bool) "default validates" true
    (Backoff.validate Backoff.default = Ok Backoff.default);
  List.iter
    (fun bad ->
      Alcotest.(check bool) "bad policy rejected" true
        (Result.is_error (Backoff.validate bad)))
    [
      { Backoff.default with initial = 0.0 };
      { Backoff.default with multiplier = 0.5 };
      { Backoff.default with max_delay = 0.0 };
      { Backoff.default with budget = -1 };
    ]

(* ---------------------------------------------------------- admission *)

let test_admission_bounds () =
  let q = Admission.create ~per_tenant:2 ~capacity:3 () in
  Alcotest.(check bool) "a1" true (Admission.offer q ~tenant:"a" 1 = Ok ());
  Alcotest.(check bool) "a2" true (Admission.offer q ~tenant:"a" 2 = Ok ());
  Alcotest.(check bool) "a3 hits quota" true
    (Admission.offer q ~tenant:"a" 3 = Error Admission.Tenant_quota);
  Alcotest.(check bool) "b1" true (Admission.offer q ~tenant:"b" 4 = Ok ());
  Alcotest.(check bool) "b2 hits capacity" true
    (Admission.offer q ~tenant:"b" 5 = Error Admission.Queue_full);
  Alcotest.(check (option (pair string int))) "fifo" (Some ("a", 1))
    (Admission.take q);
  Alcotest.(check int) "tenant count decremented" 1 (Admission.tenant_depth q "a");
  (* A migrated job re-enters at the front, past both bounds. *)
  Alcotest.(check bool) "refill" true (Admission.offer q ~tenant:"b" 6 = Ok ());
  Admission.readmit q ~tenant:"a" 1;
  Alcotest.(check int) "readmit ignores capacity" 4 (Admission.length q);
  Alcotest.(check (option (pair string int))) "readmitted job is first"
    (Some ("a", 1)) (Admission.take q)

let test_admission_remove () =
  let q = Admission.create ~capacity:4 () in
  List.iter (fun i -> ignore (Admission.offer q ~tenant:"t" i)) [ 1; 2; 3 ];
  Admission.remove q (fun i -> i = 2);
  Alcotest.(check int) "one removed" 2 (Admission.length q);
  Alcotest.(check int) "count follows" 2 (Admission.tenant_depth q "t");
  Alcotest.(check (option (pair string int))) "order kept" (Some ("t", 1))
    (Admission.take q);
  Alcotest.(check (option (pair string int))) "removed is gone" (Some ("t", 3))
    (Admission.take q)

(* ------------------------------------------------------------- runner *)

let with_tmp f =
  let path = Filename.temp_file "bistd-test" ".ckpt" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () -> f path)

let spec_tgen =
  Protocol.Tgen
    { circuit = Protocol.Named "s27"; seed = 7; directed = 30; trials = 150 }

let test_runner_matches_oracle () =
  (* A checkpointing run whose cancel token never fires must equal the
     uninterrupted oracle byte for byte, even with a tiny interval
     forcing many checkpoint legs. *)
  let oracle = Runner.run_once spec_tgen in
  with_tmp (fun checkpoint ->
      Sys.remove checkpoint;
      let cancel = Bist_resilience.Cancel.create () in
      match Runner.run_job ~checkpoint ~interval:0.001 ~cancel spec_tgen with
      | Runner.Finished out ->
        Alcotest.(check string) "legs equal oracle" oracle out;
        Alcotest.(check bool) "checkpoint cleaned up" false
          (Sys.file_exists checkpoint)
      | Runner.Preempted -> Alcotest.fail "preempted without a cancel request")

let test_runner_resumes_after_preemption () =
  let oracle = Runner.run_once spec_tgen in
  with_tmp (fun checkpoint ->
      Sys.remove checkpoint;
      (* First leg: cancel immediately, so the run parks a checkpoint. *)
      let cancel = Bist_resilience.Cancel.create () in
      Bist_resilience.Cancel.request cancel;
      (match Runner.run_job ~checkpoint ~interval:0.0001 ~cancel spec_tgen with
      | Runner.Preempted ->
        Alcotest.(check bool) "checkpoint parked" true (Sys.file_exists checkpoint)
      | Runner.Finished _ -> Alcotest.fail "ran to completion despite cancel");
      (* Second worker resumes the file and must match the oracle. *)
      let cancel = Bist_resilience.Cancel.create () in
      match Runner.run_job ~checkpoint ~interval:10.0 ~cancel spec_tgen with
      | Runner.Finished out -> Alcotest.(check string) "migrated equals oracle" oracle out
      | Runner.Preempted -> Alcotest.fail "second worker was preempted")

let test_runner_bad_jobs () =
  let bad spec =
    match Runner.run_once spec with
    | (_ : string) -> Alcotest.fail "bad job ran"
    | exception Runner.Bad_job _ -> ()
  in
  bad
    (Protocol.Tgen
       { circuit = Protocol.Named "../../etc/passwd"; seed = 1; directed = 1;
         trials = 1 });
  bad
    (Protocol.Faultsim
       { circuit = Protocol.Named "s27"; vectors = "not a vector\n" });
  bad
    (Protocol.Inject
       { circuit = Protocol.Named "s27"; seed = 1; count = 0; n = 2 });
  (* Payload netlists that do not parse are Bad_job too — the typed,
     permanent verdict, not a crash to be retried. *)
  bad
    (Protocol.Tgen
       { circuit =
           Protocol.Inline
             { name = "junk.bench"; format = Protocol.Bench;
               text = "THIS IS NOT(A, NETLIST" };
         seed = 1; directed = 0; trials = 1 });
  bad
    (Protocol.Tgen
       { circuit =
           Protocol.Inline
             { name = "junk.blif"; format = Protocol.Blif;
               text = ".model a\n.inputs x\n.outputs y\n.subckt b x=x y=y\n.end\n" };
         seed = 1; directed = 0; trials = 1 })

let test_runner_inline_equals_named () =
  (* A payload job carrying s27's own canonical text must produce
     byte-identical output to the Named job: the transport of the
     circuit is not allowed to perturb the result. *)
  let named = Runner.run_once spec_tgen in
  let inline =
    Runner.run_once
      (Protocol.Tgen
         { circuit =
             Protocol.Inline
               { name = "s27"; format = Protocol.Bench;
                 text = s27_bench_text };
           seed = 7; directed = 30; trials = 150 })
  in
  Alcotest.(check string) "inline equals named" named inline

let test_runner_faultsim () =
  let seq = Runner.run_once spec_tgen in
  let out =
    Runner.run_once
      (Protocol.Faultsim { circuit = Protocol.Named "s27"; vectors = seq })
  in
  Alcotest.(check bool) "coverage line" true
    (String.length out > 0
    && String.sub out 0 8 = "detected"
    && String.contains out '%')

(* ------------------------------------------------------------ sandbox *)

let test_sandbox_get_and_validate () =
  let soft, hard = Sandbox.get Sandbox.Open_files in
  Alcotest.(check bool) "soft <= hard (or unlimited)" true
    (soft = -1L || hard = -1L || Int64.compare soft hard <= 0);
  Alcotest.(check bool) "default validates" true
    (Sandbox.validate Sandbox.default = Ok Sandbox.default);
  Alcotest.(check bool) "zero bound rejected" true
    (Result.is_error
       (Sandbox.validate { Sandbox.none with address_space_mb = Some 0 }));
  Alcotest.(check string) "describe"
    "as=2048MiB cpu=unlimited nofile=256 fsize=1024MiB"
    (Sandbox.describe Sandbox.default)

(* The probe body run by the re-exec'd test binary (see test_main.ml):
   jail this process the way a worker does, then allocate far past the
   cap. Exit 42 = the allocation failed as Out_of_memory, which is the
   behaviour the daemon's supervisor counts on. The cap rides on top of
   the runtime's existing reservation, so it is generous but still far
   below the 2 GiB ask. *)
let sandbox_probe () =
  let code =
    try
      Sandbox.apply { Sandbox.none with address_space_mb = Some 1024 };
      let huge = Bytes.create (2 * 1024 * 1024 * 1024) in
      ignore (Bytes.get huge 0);
      41 (* the allocation was supposed to fail *)
    with Out_of_memory -> 42 | _ -> 43
  in
  exit code

let test_sandbox_address_space_enforced () =
  (* Re-exec this binary in probe mode: rlimits are irreversible and
     OCaml 5 forbids fork() once other test suites have spawned domains,
     so the jail goes up in a fresh process. *)
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      (Array.append (Unix.environment ()) [| "BIST_SANDBOX_PROBE=1" |])
      Unix.stdin Unix.stdout Unix.stderr
  in
  match Unix.waitpid [] pid with
  | _, Unix.WEXITED 42 -> ()
  | _, Unix.WEXITED 41 ->
    Alcotest.fail "2 GiB allocation fit under a 1 GiB rlimit"
  | _, Unix.WEXITED code -> Alcotest.failf "sandbox probe exited %d" code
  | _, (Unix.WSIGNALED _ | Unix.WSTOPPED _) ->
    Alcotest.fail "sandbox probe died to a signal"

let suite =
  [
    Alcotest.test_case "frame roundtrip under chunking" `Quick test_frame_roundtrip;
    Alcotest.test_case "oversized frame rejected" `Quick test_frame_oversized;
    Alcotest.test_case "truncated frame detected" `Quick test_frame_truncation_detected;
    Alcotest.test_case "protocol roundtrip" `Quick test_protocol_roundtrip;
    Alcotest.test_case "legacy v1 ping decodes" `Quick test_legacy_ping_decodes;
    Alcotest.test_case "over-cap netlist payload rejected" `Quick test_oversized_netlist_rejected;
    Alcotest.test_case "frame cap boundary (cap-1, cap, cap+1)" `Quick test_frame_cap_boundary;
    Alcotest.test_case "frame mutants only raise Protocol_error" `Quick test_fuzz_frames;
    Alcotest.test_case "backoff growth, cap, budget" `Quick test_backoff_growth;
    Alcotest.test_case "backoff validation" `Quick test_backoff_validate;
    Alcotest.test_case "admission bounds and readmit" `Quick test_admission_bounds;
    Alcotest.test_case "admission remove" `Quick test_admission_remove;
    Alcotest.test_case "runner legs equal oracle" `Quick test_runner_matches_oracle;
    Alcotest.test_case "runner resumes after preemption" `Quick test_runner_resumes_after_preemption;
    Alcotest.test_case "runner rejects bad jobs" `Quick test_runner_bad_jobs;
    Alcotest.test_case "runner inline payload equals named" `Quick test_runner_inline_equals_named;
    Alcotest.test_case "runner faultsim summary" `Quick test_runner_faultsim;
    Alcotest.test_case "sandbox get/validate/describe" `Quick test_sandbox_get_and_validate;
    Alcotest.test_case "sandbox address-space rlimit enforced" `Quick test_sandbox_address_space_enforced;
  ]
