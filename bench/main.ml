(* Benchmark harness.

   Part 1 (Bechamel): one micro-benchmark per paper table plus the
   ablation benches called out in DESIGN.md, measured on fixed fast
   workloads so the timings are comparable run to run.

   Part 2 (tables): regenerate Tables 3, 4 and 5, the measured-vs-paper
   comparison, and Figure 1 by running the full experiment pipeline over
   the evaluation suite. `--fast` restricts the suite to the circuits up
   to x1488; `--micro-only` / `--tables-only` select one part.

   Part 3 (`--json PATH`): the recorded trajectory. Wall-times the
   fault-table workloads sequentially and on a `--jobs`-wide domain pool,
   verifies the two tables are bit-identical, and appends one run record
   to the JSON array at PATH (see BENCH_results.json at the repo root) so
   successive PRs accumulate a perf baseline to regress against. *)

open Bechamel
open Toolkit

(* Fixed workloads, built once. *)

let s27 = Bist_bench.S27.circuit ()
let s27_universe = Bist_fault.Universe.collapsed s27
let s27_t0 = Bist_bench.S27.t0 ()
let table1_s = Bist_bench.S27.table1_s ()

let x298 = (Option.get (Bist_bench.Registry.find "x298")).circuit ()
let x298_universe = Bist_fault.Universe.collapsed x298

let x298_t0 =
  lazy
    (let rng = Bist_util.Rng.create 99 in
     let t0, _ = Bist_tgen.Engine.generate ~rng x298_universe in
     fst (Bist_tgen.Compaction.compact ~max_trials:150 x298_universe t0))

(* Table 1: the expansion operators. *)
let bench_table1 =
  Test.make ~name:"table1_expand"
    (Staged.stage (fun () -> ignore (Bist_core.Ops.expand ~n:2 table1_s)))

(* Table 2: fault simulation of T0 with detection times. *)
let bench_table2 =
  Test.make ~name:"table2_fault_table"
    (Staged.stage (fun () ->
         ignore (Bist_fault.Fault_table.compute s27_universe s27_t0)))

(* Table 3: the full per-circuit pipeline (selection + compaction). *)
let bench_table3 =
  Test.make ~name:"table3_pipeline_x298"
    (Staged.stage (fun () ->
         ignore
           (Bist_core.Scheme.execute ~verify:false ~seed:5 ~n:8
              ~t0:(Lazy.force x298_t0) x298_universe)))

(* Table 4's two measured phases, separately. *)
let bench_table4_proc1 =
  Test.make ~name:"table4_procedure1_x298"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~rng ~n:8 ~t0:(Lazy.force x298_t0)
              x298_universe)))

let bench_table4_comp =
  let prepared =
    lazy
      (let rng = Bist_util.Rng.create 5 in
       let r =
         Bist_core.Procedure1.run ~rng ~n:8 ~t0:(Lazy.force x298_t0)
           x298_universe
       in
       (Bist_core.Procedure1.sequences r, r.Bist_core.Procedure1.t0_detected))
  in
  Test.make ~name:"table4_compaction_x298"
    (Staged.stage (fun () ->
         let seqs, targets = Lazy.force prepared in
         ignore (Bist_core.Postprocess.run ~n:8 ~targets x298_universe seqs)))

(* Table 5's applied-length accounting via the hardware session. *)
let bench_table5_session =
  let set = lazy (Bist_core.Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe) in
  Test.make ~name:"table5_hw_session_s27"
    (Staged.stage (fun () ->
         let run = Lazy.force set in
         ignore (Bist_hw.Session.run_exn ~n:2 s27 run.Bist_core.Scheme.sequences)))

(* Ablations from DESIGN.md section 5. *)

let bench_ablation_fault_order order name =
  Test.make ~name
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~fault_order:order ~rng ~n:4
              ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_ablation_omission =
  let strategy =
    { Bist_core.Procedure2.paper_strategy with
      Bist_core.Procedure2.omission = `None }
  in
  Test.make ~name:"ablation_no_omission"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~strategy ~rng ~n:4
              ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_ablation_operators =
  Test.make ~name:"ablation_repeat_only"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~operators:[ Bist_core.Ops.Repeat ] ~rng
              ~n:4 ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_fsim_parallel =
  Test.make ~name:"fsim_parallel_x298"
    (Staged.stage (fun () ->
         ignore (Bist_fault.Fsim.run x298_universe (Lazy.force x298_t0))))

let bench_fsim_serial =
  Test.make ~name:"fsim_serial_s27"
    (Staged.stage (fun () ->
         Bist_fault.Universe.iter
           (fun _ fault -> ignore (Bist_fault.Fsim.detects s27 fault s27_t0))
           s27_universe))

(* Event-driven vs levelized good-machine simulation on a hold-heavy
   sequence (the event engine's favourable case). *)
let hold_seq =
  lazy
    (let rng = Bist_util.Rng.create 1 in
     let width = Bist_circuit.Netlist.num_inputs x298 in
     let v = Bist_logic.Vector.random_binary rng width in
     Bist_logic.Tseq.of_vectors (Array.make 256 v))

let bench_sim_levelized =
  Test.make ~name:"sim_levelized_hold_x298"
    (Staged.stage (fun () ->
         ignore (Bist_sim.Seq_sim.run x298 (Lazy.force hold_seq))))

let bench_sim_event =
  Test.make ~name:"sim_event_hold_x298"
    (Staged.stage (fun () ->
         ignore (Bist_sim.Event_sim.run x298 (Lazy.force hold_seq))))

let all_micro =
  [
    bench_table1; bench_table2; bench_table3; bench_table4_proc1;
    bench_table4_comp; bench_table5_session;
    bench_ablation_fault_order `Max_udet "ablation_order_max_udet";
    bench_ablation_fault_order `Min_udet "ablation_order_min_udet";
    bench_ablation_fault_order `Random "ablation_order_random";
    bench_ablation_omission; bench_ablation_operators; bench_fsim_parallel;
    bench_fsim_serial; bench_sim_levelized; bench_sim_event;
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) () in
  print_endline "== Bechamel micro-benchmarks (one per table + ablations) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %14.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
        ols)
    all_micro

(* Ablation quality: the micro-benchmarks above time the variants; the
   harness library computes what each variant costs in result quality. *)
let run_ablation_quality () =
  let rows = Bist_harness.Ablation.run ~seed:5 ~n:4 ~t0:(Lazy.force x298_t0) x298_universe in
  print_endline "== Ablation quality on x298 (n = 4) ==";
  print_string (Bist_harness.Ablation.render rows)

let run_tables ~fast () =
  let circuits =
    if fast then
      Some
        [ "x298"; "x344"; "x382"; "x400"; "x526"; "x641"; "x820"; "x1196";
          "x1423"; "x1488" ]
    else None
  in
  let results =
    Bist_harness.Experiment.run_suite ?circuits
      ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
      ()
  in
  print_newline ();
  print_string (Bist_harness.Tables.table3 results);
  print_newline ();
  print_string (Bist_harness.Tables.table4 results);
  print_newline ();
  print_string (Bist_harness.Tables.table5 results);
  print_newline ();
  print_string (Bist_harness.Tables.comparison results);
  print_newline ();
  print_string (Bist_harness.Figure1.render_s27 ())

(* Part 3: the recorded trajectory (`--json PATH`). *)

module Pool = Bist_parallel.Pool
module Fault_table = Bist_fault.Fault_table
module Universe = Bist_fault.Universe

let wall f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (Unix.gettimeofday () -. t0, r)

(* Best of [repeats] wall times: the workloads are deterministic, so the
   minimum is the least-noisy estimate on a shared host. *)
let best_of ~repeats f =
  let best = ref infinity in
  let result = ref None in
  for _ = 1 to repeats do
    let t, r = wall f in
    if t < !best then best := t;
    result := Some r
  done;
  (!best, Option.get !result)

let tables_identical a b =
  let ua = Fault_table.universe a in
  Bist_util.Bitset.equal (Fault_table.detected a) (Fault_table.detected b)
  && Array.for_all
       (fun id -> Fault_table.udet a id = Fault_table.udet b id)
       (Array.init (Universe.size ua) (fun i -> i))

type json_record = {
  bench : string;
  circuit : string;
  faults : int;
  seq_len : int;
  seconds_seq : float;
  seconds_par : float;
  seconds_instrumented : float;
      (** Wall time of the separate pass the [phases] totals come from.
          That pass runs with a live Obs sink, so its span totals
          (including instrumentation overhead) legitimately exceed the
          null-sink [seconds_seq]/[seconds_par] timings — recording its
          own wall clock here keeps the two scales from being read
          against each other. *)
  identical : bool;
  phases : (string * float) list;  (** Per-phase seconds from the instrumented pass. *)
}

let json_workloads () =
  let random_seq circuit len =
    let rng = Bist_util.Rng.create 7 in
    Bist_logic.Tseq.random_binary rng
      ~width:(Bist_circuit.Netlist.num_inputs circuit)
      ~length:len
  in
  let registry name len =
    let circuit = (Option.get (Bist_bench.Registry.find name)).circuit () in
    (Printf.sprintf "fault_table_%s" name, name,
     Universe.collapsed circuit, random_seq circuit len)
  in
  [
    ("fault_table_s27", "s27", s27_universe, s27_t0);
    registry "x298" 256;
    registry "x1488" 256;
    registry "x5378" 256;
  ]

let run_json ?(sat = true) ~jobs ~trace ~stats path =
  let jobs = if jobs = 0 then Pool.default_jobs () else max 1 jobs in
  let pool = if jobs > 1 then Some (Pool.create ~jobs ()) else None in
  let sequential = Pool.create ~jobs:1 () in
  (* One shared sink for the instrumented passes; the timed passes below
     run with the null sink so the recorded seconds stay comparable with
     the pre-obs trajectory. *)
  let obs = Bist_obs.Obs.create ~trace:(trace <> None) () in
  let records =
    List.map
      (fun (bench, circuit, universe, seq) ->
        let repeats = 3 in
        let seconds_seq, table_seq =
          best_of ~repeats (fun () ->
              Fault_table.compute ~pool:sequential universe seq)
        in
        let seconds_par, table_par =
          match pool with
          | Some p ->
            best_of ~repeats (fun () -> Fault_table.compute ~pool:p universe seq)
          | None -> (seconds_seq, table_seq)
        in
        (* Phase-resolution pass: one extra instrumented run per workload
           (untimed above). The shared sink accumulates across workloads,
           so this record's phases are the delta of the cumulative span
           totals around its run. *)
        let seconds_instrumented, phases =
          let before = Bist_obs.Obs.span_seconds obs in
          let seconds_instrumented, () =
            wall (fun () ->
                ignore
                  (Bist_obs.Obs.span obs ~cat:"bench" bench (fun () ->
                       Fault_table.compute ~obs ?pool universe seq)))
          in
          ( seconds_instrumented,
            List.filter_map
              (fun (name, total) ->
                let prior =
                  Option.value ~default:0.0 (List.assoc_opt name before)
                in
                let d = total -. prior in
                if d > 0.0 then Some (name, d) else None)
              (Bist_obs.Obs.span_seconds obs) )
        in
        let r =
          {
            bench; circuit;
            faults = Universe.size universe;
            seq_len = Bist_logic.Tseq.length seq;
            seconds_seq; seconds_par; seconds_instrumented;
            identical = tables_identical table_seq table_par;
            phases;
          }
        in
        Printf.printf
          "  %-24s %5d faults  seq %8.4fs  jobs=%d %8.4fs  speedup %.2fx  %s\n%!"
          r.bench r.faults r.seconds_seq jobs r.seconds_par
          (r.seconds_seq /. r.seconds_par)
          (if r.identical then "identical" else "MISMATCH");
        r)
      (json_workloads ())
  in
  (* SAT workload: the exact untestability prescreen (structural prover,
     simulation refutation, bounded CDCL queries) on x298 at a small
     frame bound. [identical] here checks determinism — two runs must
     partition the universe the same way — and [phases] carries the
     per-phase solve seconds, including one span per SAT query. *)
  let records =
    if not sat then records
    else begin
    let module Untestable = Bist_analyze.Untestable in
    let config = { Untestable.default_exact_config with Untestable.frames = 4 } in
    let run ?obs () = Untestable.exact_prescreen ?obs ~config x298_universe in
    let seconds_a, a = wall (fun () -> run ()) in
    let seconds_b, b = wall (fun () -> run ()) in
    let identical =
      Bist_util.Bitset.equal a.Untestable.proved b.Untestable.proved
      && Bist_util.Bitset.equal a.Untestable.refuted b.Untestable.refuted
      && Bist_util.Bitset.equal a.Untestable.unknown b.Untestable.unknown
    in
    let seconds_instrumented, phases =
      let before = Bist_obs.Obs.span_seconds obs in
      let seconds_instrumented, () =
        wall (fun () ->
            ignore
              (Bist_obs.Obs.span obs ~cat:"bench" "sat_exact_prescreen_x298"
                 (fun () -> run ~obs ())))
      in
      ( seconds_instrumented,
        List.filter_map
          (fun (name, total) ->
            let prior = Option.value ~default:0.0 (List.assoc_opt name before) in
            let d = total -. prior in
            if d > 0.0 then Some (name, d) else None)
          (Bist_obs.Obs.span_seconds obs) )
    in
    let r =
      {
        bench = "sat_exact_prescreen_x298"; circuit = "x298";
        faults = Universe.size x298_universe;
        seq_len = config.Untestable.frames;
        seconds_seq = seconds_a; seconds_par = seconds_b;
        seconds_instrumented; identical; phases;
      }
    in
    Printf.printf
      "  %-24s %5d faults  run1 %8.4fs  run2 %8.4fs  %s\n%!"
      r.bench r.faults seconds_a seconds_b
      (if identical then "identical" else "MISMATCH");
    records @ [ r ]
    end
  in
  (match trace with
  | Some tpath ->
    Bist_obs.Obs.write_trace obs tpath;
    Printf.eprintf "wrote %s (%d trace events)\n" tpath
      (Bist_obs.Obs.trace_events obs)
  | None -> ());
  if stats then prerr_string (Bist_obs.Obs.summary obs);
  let record_json =
    let benches =
      records
      |> List.map (fun r ->
             let phases =
               r.phases
               |> List.map (fun (name, s) -> Printf.sprintf "%S: %.6f" name s)
               |> String.concat ", "
             in
             Printf.sprintf
               "    { \"bench\": %S, \"circuit\": %S, \"faults\": %d, \
                \"seq_len\": %d, \"seconds_seq\": %.6f, \"seconds_par\": %.6f, \
                \"speedup\": %.4f, \"seconds_instrumented\": %.6f, \
                \"identical\": %b,\n\
               \      \"phases\": { %s } }"
               r.bench r.circuit r.faults r.seq_len r.seconds_seq r.seconds_par
               (r.seconds_seq /. r.seconds_par) r.seconds_instrumented
               r.identical phases)
      |> String.concat ",\n"
    in
    Printf.sprintf
      "  { \"schema\": \"bist-bench/3\",\n\
      \    \"unix_time\": %.0f,\n\
      \    \"cores\": %d,\n\
      \    \"jobs\": %d,\n\
      \    \"benches\": [\n%s\n    ] }"
      (Unix.time ())
      (Domain.recommended_domain_count ())
      jobs benches
  in
  (* Append into the JSON array at [path] textually, so the trajectory
     file stays a plain, diff-friendly list of run records. The existing
     file must parse as a JSON array before we touch it — a truncated or
     hand-mangled trajectory is refused with its parse error instead of
     being silently wrapped in fresh brackets — and the result goes
     through the atomic temp-file + rename write, so a run killed
     mid-append can never leave the trajectory truncated. *)
  let previous =
    if Sys.file_exists path then begin
      let s =
        match Bist_obs.Json_check.parse_file path with
        | Ok (Bist_obs.Json_check.List _) ->
          Bist_resilience.Atomic_io.read_file ~path
        | Ok _ ->
          Printf.eprintf "error: %s: not a JSON array; refusing to append\n"
            path;
          exit 2
        | Error message ->
          Printf.eprintf
            "error: %s: %s — fix or remove the file before appending\n" path
            message;
          exit 2
      in
      let s = String.trim s in
      if s = "" || s = "[]" then None
      else Some (String.trim (String.sub s 1 (String.length s - 2)))
    end
    else None
  in
  let body =
    match previous with
    | None -> record_json
    | Some old -> old ^ ",\n" ^ record_json
  in
  Bist_resilience.Atomic_io.write_file ~path
    (Printf.sprintf "[\n%s\n]\n" body);
  Printf.printf "appended run record (%d benches) to %s\n" (List.length records) path;
  if List.exists (fun r -> not r.identical) records then begin
    prerr_endline "error: parallel fault table differs from sequential";
    exit 1
  end

(* `--perf-smoke`: the CI perf gate. Appends a fresh record (fault-table
   workloads only, jobs>=2) to the trajectory, then walks the whole file:

   - any record anywhere with `identical: false` fails the gate;
   - on a multi-core host, the fresh record's speedup on the gated
     x1488/x5378-class benches must not fall more than 20% below the
     best multi-core speedup ever recorded for that bench;
   - on a single-core host the speedup assertion is vacuous (sharding is
     crossover-suppressed, so speedup hovers at 1.0) and is skipped with
     a warning. *)

module Json = Bist_obs.Json_check

let gated_benches = [ "fault_table_x1488"; "fault_table_x5378" ]

let perf_smoke ~jobs path =
  let jobs = if jobs = 0 then 2 else max 2 jobs in
  run_json ~sat:false ~jobs ~trace:None ~stats:false path;
  let records =
    match Json.parse_file path with
    | Ok (Json.List l) -> l
    | Ok _ ->
      Printf.eprintf "perf-smoke: %s is not a JSON array\n" path;
      exit 2
    | Error m ->
      Printf.eprintf "perf-smoke: %s: %s\n" path m;
      exit 2
  in
  let number = function Some (Json.Number f) -> Some f | _ -> None in
  let string_ = function Some (Json.String s) -> Some s | _ -> None in
  let failed = ref false in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Printf.eprintf "perf-smoke: FAIL: %s\n" m;
        failed := true)
      fmt
  in
  (* 1. bit-identity must hold in every record of the trajectory. *)
  List.iteri
    (fun i record ->
      match Json.member "benches" record with
      | Some (Json.List benches) ->
        List.iter
          (fun b ->
            match (Json.member "identical" b, string_ (Json.member "bench" b)) with
            | Some (Json.Bool false), name ->
              fail "record %d bench %s has identical=false" i
                (Option.value name ~default:"?")
            | _ -> ())
          benches
      | _ -> ())
    records;
  (* 2. speedup regression against the best multi-core history. *)
  let current = List.nth records (List.length records - 1) in
  let cores =
    int_of_float (Option.value ~default:1.0 (number (Json.member "cores" current)))
  in
  let speedups_of record bench_name =
    match
      ( number (Json.member "jobs" record),
        Json.member "benches" record )
    with
    | Some j, Some (Json.List benches) when j >= 2.0 ->
      List.filter_map
        (fun b ->
          if string_ (Json.member "bench" b) = Some bench_name then
            number (Json.member "speedup" b)
          else None)
        benches
    | _ -> []
  in
  if cores <= 1 then
    Printf.eprintf
      "perf-smoke: warning: cores=1 — sharding is crossover-suppressed, \
       skipping the speedup assertion\n"
  else
    List.iter
      (fun bench_name ->
        let history =
          List.concat_map (fun r -> speedups_of r bench_name) records
        in
        let current_speedup = speedups_of current bench_name in
        match (history, current_speedup) with
        | [], _ | _, [] -> ()
        | _, now :: _ ->
          let best = List.fold_left max neg_infinity history in
          if now < 0.8 *. best then
            fail "%s speedup %.2fx regressed >20%% below best recorded %.2fx"
              bench_name now best)
      gated_benches;
  if !failed then exit 1;
  print_endline "perf-smoke: PASS"

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  let value_of flag =
    let rec go = function
      | f :: v :: _ when f = flag -> Some v
      | _ :: rest -> go rest
      | [] -> None
    in
    go args
  in
  let jobs =
    match value_of "--jobs" with
    | Some v ->
      (match int_of_string_opt v with
      | Some j -> Bist_parallel.Pool.validate_jobs ~source:"--jobs" j
      | None -> Printf.eprintf "error: --jobs expects an integer\n"; exit 2)
    | None -> 0
  in
  if has "--perf-smoke" then
    perf_smoke ~jobs
      (Option.value (value_of "--json") ~default:"BENCH_results.json")
  else
  match value_of "--json" with
  | Some path ->
    run_json ~jobs ~trace:(value_of "--trace") ~stats:(has "--stats") path
  | None ->
    if has "--trace" || has "--stats" then begin
      Printf.eprintf "error: --trace/--stats apply to the --json trajectory run\n";
      exit 2
    end;
    if not (has "--tables-only") then begin
      run_micro ();
      print_newline ();
      run_ablation_quality ();
      print_newline ()
    end;
    if not (has "--micro-only") then run_tables ~fast:(has "--fast") ()
