(* Benchmark harness.

   Part 1 (Bechamel): one micro-benchmark per paper table plus the
   ablation benches called out in DESIGN.md, measured on fixed fast
   workloads so the timings are comparable run to run.

   Part 2 (tables): regenerate Tables 3, 4 and 5, the measured-vs-paper
   comparison, and Figure 1 by running the full experiment pipeline over
   the evaluation suite. `--fast` restricts the suite to the circuits up
   to x1488; `--micro-only` / `--tables-only` select one part. *)

open Bechamel
open Toolkit

(* Fixed workloads, built once. *)

let s27 = Bist_bench.S27.circuit ()
let s27_universe = Bist_fault.Universe.collapsed s27
let s27_t0 = Bist_bench.S27.t0 ()
let table1_s = Bist_bench.S27.table1_s ()

let x298 = (Option.get (Bist_bench.Registry.find "x298")).circuit ()
let x298_universe = Bist_fault.Universe.collapsed x298

let x298_t0 =
  lazy
    (let rng = Bist_util.Rng.create 99 in
     let t0, _ = Bist_tgen.Engine.generate ~rng x298_universe in
     fst (Bist_tgen.Compaction.compact ~max_trials:150 x298_universe t0))

(* Table 1: the expansion operators. *)
let bench_table1 =
  Test.make ~name:"table1_expand"
    (Staged.stage (fun () -> ignore (Bist_core.Ops.expand ~n:2 table1_s)))

(* Table 2: fault simulation of T0 with detection times. *)
let bench_table2 =
  Test.make ~name:"table2_fault_table"
    (Staged.stage (fun () ->
         ignore (Bist_fault.Fault_table.compute s27_universe s27_t0)))

(* Table 3: the full per-circuit pipeline (selection + compaction). *)
let bench_table3 =
  Test.make ~name:"table3_pipeline_x298"
    (Staged.stage (fun () ->
         ignore
           (Bist_core.Scheme.execute ~verify:false ~seed:5 ~n:8
              ~t0:(Lazy.force x298_t0) x298_universe)))

(* Table 4's two measured phases, separately. *)
let bench_table4_proc1 =
  Test.make ~name:"table4_procedure1_x298"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~rng ~n:8 ~t0:(Lazy.force x298_t0)
              x298_universe)))

let bench_table4_comp =
  let prepared =
    lazy
      (let rng = Bist_util.Rng.create 5 in
       let r =
         Bist_core.Procedure1.run ~rng ~n:8 ~t0:(Lazy.force x298_t0)
           x298_universe
       in
       (Bist_core.Procedure1.sequences r, r.Bist_core.Procedure1.t0_detected))
  in
  Test.make ~name:"table4_compaction_x298"
    (Staged.stage (fun () ->
         let seqs, targets = Lazy.force prepared in
         ignore (Bist_core.Postprocess.run ~n:8 ~targets x298_universe seqs)))

(* Table 5's applied-length accounting via the hardware session. *)
let bench_table5_session =
  let set = lazy (Bist_core.Scheme.execute ~seed:7 ~n:2 ~t0:s27_t0 s27_universe) in
  Test.make ~name:"table5_hw_session_s27"
    (Staged.stage (fun () ->
         let run = Lazy.force set in
         ignore (Bist_hw.Session.run_exn ~n:2 s27 run.Bist_core.Scheme.sequences)))

(* Ablations from DESIGN.md section 5. *)

let bench_ablation_fault_order order name =
  Test.make ~name
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~fault_order:order ~rng ~n:4
              ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_ablation_omission =
  let strategy =
    { Bist_core.Procedure2.paper_strategy with
      Bist_core.Procedure2.omission = `None }
  in
  Test.make ~name:"ablation_no_omission"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~strategy ~rng ~n:4
              ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_ablation_operators =
  Test.make ~name:"ablation_repeat_only"
    (Staged.stage (fun () ->
         let rng = Bist_util.Rng.create 5 in
         ignore
           (Bist_core.Procedure1.run ~operators:[ Bist_core.Ops.Repeat ] ~rng
              ~n:4 ~t0:(Lazy.force x298_t0) x298_universe)))

let bench_fsim_parallel =
  Test.make ~name:"fsim_parallel_x298"
    (Staged.stage (fun () ->
         ignore (Bist_fault.Fsim.run x298_universe (Lazy.force x298_t0))))

let bench_fsim_serial =
  Test.make ~name:"fsim_serial_s27"
    (Staged.stage (fun () ->
         Bist_fault.Universe.iter
           (fun _ fault -> ignore (Bist_fault.Fsim.detects s27 fault s27_t0))
           s27_universe))

(* Event-driven vs levelized good-machine simulation on a hold-heavy
   sequence (the event engine's favourable case). *)
let hold_seq =
  lazy
    (let rng = Bist_util.Rng.create 1 in
     let width = Bist_circuit.Netlist.num_inputs x298 in
     let v = Bist_logic.Vector.random_binary rng width in
     Bist_logic.Tseq.of_vectors (Array.make 256 v))

let bench_sim_levelized =
  Test.make ~name:"sim_levelized_hold_x298"
    (Staged.stage (fun () ->
         ignore (Bist_sim.Seq_sim.run x298 (Lazy.force hold_seq))))

let bench_sim_event =
  Test.make ~name:"sim_event_hold_x298"
    (Staged.stage (fun () ->
         ignore (Bist_sim.Event_sim.run x298 (Lazy.force hold_seq))))

let all_micro =
  [
    bench_table1; bench_table2; bench_table3; bench_table4_proc1;
    bench_table4_comp; bench_table5_session;
    bench_ablation_fault_order `Max_udet "ablation_order_max_udet";
    bench_ablation_fault_order `Min_udet "ablation_order_min_udet";
    bench_ablation_fault_order `Random "ablation_order_random";
    bench_ablation_omission; bench_ablation_operators; bench_fsim_parallel;
    bench_fsim_serial; bench_sim_levelized; bench_sim_event;
  ]

let run_micro () =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.6) () in
  print_endline "== Bechamel micro-benchmarks (one per table + ablations) ==";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances (Test.make_grouped ~name:"g" [ test ]) in
      let ols =
        Analyze.all
          (Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |])
          Instance.monotonic_clock results
      in
      Hashtbl.iter
        (fun name result ->
          match Analyze.OLS.estimates result with
          | Some [ est ] -> Printf.printf "  %-32s %14.0f ns/run\n%!" name est
          | Some _ | None -> Printf.printf "  %-32s (no estimate)\n%!" name)
        ols)
    all_micro

(* Ablation quality: the micro-benchmarks above time the variants; the
   harness library computes what each variant costs in result quality. *)
let run_ablation_quality () =
  let rows = Bist_harness.Ablation.run ~seed:5 ~n:4 ~t0:(Lazy.force x298_t0) x298_universe in
  print_endline "== Ablation quality on x298 (n = 4) ==";
  print_string (Bist_harness.Ablation.render rows)

let run_tables ~fast () =
  let circuits =
    if fast then
      Some
        [ "x298"; "x344"; "x382"; "x400"; "x526"; "x641"; "x820"; "x1196";
          "x1423"; "x1488" ]
    else None
  in
  let results =
    Bist_harness.Experiment.run_suite ?circuits
      ~progress:(fun line -> Printf.eprintf "%s\n%!" line)
      ()
  in
  print_newline ();
  print_string (Bist_harness.Tables.table3 results);
  print_newline ();
  print_string (Bist_harness.Tables.table4 results);
  print_newline ();
  print_string (Bist_harness.Tables.table5 results);
  print_newline ();
  print_string (Bist_harness.Tables.comparison results);
  print_newline ();
  print_string (Bist_harness.Figure1.render_s27 ())

let () =
  let args = Array.to_list Sys.argv in
  let has flag = List.mem flag args in
  if not (has "--tables-only") then begin
    run_micro ();
    print_newline ();
    run_ablation_quality ();
    print_newline ()
  end;
  if not (has "--micro-only") then run_tables ~fast:(has "--fast") ()
