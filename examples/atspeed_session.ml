(* Scenario: the on-chip test session, cycle by cycle.

   Runs the hardware model end to end on s27: load each stored sequence
   into the test memory, let the controller FSM expand it (up/down
   address sweeps through the complement and shift muxes), drive the
   circuit at speed, and compact the responses into a MISR signature.
   Also demonstrates the controller/software equivalence that the test
   suite checks as a property. *)

let () =
  let circuit = Bist_bench.S27.circuit () in
  let universe = Bist_fault.Universe.collapsed circuit in
  let t0 = Bist_bench.S27.t0 () in
  let n = 2 in
  let run = Bist_core.Scheme.execute ~seed:7 ~n ~t0 universe in
  Format.printf "stored set for s27 (n = %d): %d sequences@." n
    run.Bist_core.Scheme.after.count;

  (* Hardware expansion equals the software definition. *)
  let memory =
    Bist_hw.Memory.create
      ~word_bits:(Bist_circuit.Netlist.num_inputs circuit)
      ~depth:(max 1 run.after.max_length) ()
  in
  List.iteri
    (fun i s ->
      Bist_hw.Memory.load_sequence_exn memory s;
      let controller = Bist_hw.Controller.start memory ~n in
      let hw = Bist_hw.Controller.emit_all controller in
      let sw = Bist_core.Ops.expand ~n s in
      Format.printf "  S%d: controller emitted %d vectors; equals Ops.expand: %b@."
        (i + 1) (Bist_logic.Tseq.length hw) (Bist_logic.Tseq.equal hw sw))
    run.sequences;

  (* The full session with MISR signatures. Starting from the unknown
     state contaminates the signature with X values, so — as the paper
     prescribes — a synchronizing prefix runs before each sequence with
     the signature window closed. *)
  let report = Bist_hw.Session.run_exn ~n circuit run.sequences in
  Format.printf "@.without synchronization:@.%a@." Bist_hw.Session.pp_report report;
  let rng = Bist_util.Rng.create 4 in
  (match Bist_hw.Sync.find_sequence ~rng circuit with
   | None -> Format.printf "no synchronizing sequence exists@."
   | Some sync ->
     Format.printf "synchronizing prefix (%d vectors): %s@."
       (Bist_logic.Tseq.length sync)
       (String.concat " " (Bist_logic.Tseq.to_strings sync));
     let report = Bist_hw.Session.run_exn ~sync ~n circuit run.sequences in
     Format.printf "with synchronization:@.%a@." Bist_hw.Session.pp_report report);

  (* Diagnosis resolution of the per-sequence pass/fail syndrome: how far
     can the tester narrow down which fault failed the chip? *)
  let expanded = List.map (Bist_core.Ops.expand ~n) run.sequences in
  let dict = Bist_fault.Dictionary.build universe expanded in
  let classes = Bist_fault.Dictionary.distinguishable_classes dict in
  Format.printf
    "fault dictionary: %d pass/fail syndromes over %d detected faults \
     (resolution %.2f)@."
    (List.length classes)
    (List.fold_left (fun acc c -> acc + List.length c) 0 classes)
    (Bist_fault.Dictionary.resolution dict);

  (* A faulty chip produces a different signature: inject a fault into
     the simulated circuit and re-run the same session. *)
  let fault = Bist_fault.Universe.get universe 0 in
  Format.printf "injecting %s and recomputing signatures:@."
    (Bist_fault.Fault.name circuit fault);
  let sim = Bist_fault.Fsim.single circuit fault in
  ignore (sim : Bist_fault.Fsim.single);
  let detected =
    List.exists
      (fun s ->
        Bist_fault.Fsim.detects circuit fault (Bist_core.Ops.expand ~n s))
      run.sequences
  in
  Format.printf "fault observable in at least one expanded sequence: %b@."
    detected
