(* Scenario: sizing the on-chip test memory.

   A designer adding BIST to a part has a deterministic sequence T0 and
   must decide between (a) storing all of T0 on-chip and (b) the paper's
   scheme — store only short subsequences and expand them on-chip. This
   example generates T0 for a mid-size circuit, runs the scheme for each
   n in {2,4,8,16}, and prints memory and load-time costs side by side,
   including the (circuit-independent) expansion hardware. *)

let () =
  let entry = Option.get (Bist_bench.Registry.find "x344") in
  let circuit = entry.circuit ()
  and name = entry.name in
  let universe = Bist_fault.Universe.collapsed circuit in
  let num_inputs = Bist_circuit.Netlist.num_inputs circuit in

  let rng = Bist_util.Rng.create 99 in
  let t0_raw, _ = Bist_tgen.Engine.generate ~rng universe in
  let t0, _ = Bist_tgen.Compaction.compact ~max_trials:200 universe t0_raw in
  let t0_len = Bist_logic.Tseq.length t0 in
  Format.printf "%s: |T0| = %d vectors, %d primary inputs@.@." name t0_len num_inputs;

  let full_bits = Bist_hw.Area.storage_for_full_t0 ~num_inputs ~t0_len in
  Format.printf "baseline (store all of T0): %d memory bits, %d load cycles@.@."
    full_bits t0_len;

  let table =
    Bist_util.Ascii_table.create
      ~headers:
        [ ("n", Bist_util.Ascii_table.Right);
          ("|S|", Bist_util.Ascii_table.Right);
          ("max len", Bist_util.Ascii_table.Right);
          ("memory bits", Bist_util.Ascii_table.Right);
          ("vs full", Bist_util.Ascii_table.Right);
          ("load cycles", Bist_util.Ascii_table.Right);
          ("at-speed len", Bist_util.Ascii_table.Right);
          ("hw gate eq.", Bist_util.Ascii_table.Right) ]
  in
  List.iter
    (fun n ->
      let run = Bist_core.Scheme.execute ~seed:5 ~n ~t0 universe in
      let max_len = max 1 run.Bist_core.Scheme.after.max_length in
      let area = Bist_hw.Area.estimate ~num_inputs ~max_seq_len:max_len ~n () in
      Bist_util.Ascii_table.add_row table
        [ string_of_int n;
          string_of_int run.after.count;
          string_of_int run.after.max_length;
          string_of_int area.Bist_hw.Area.memory_bits;
          Printf.sprintf "%.1f%%"
            (100.0 *. float_of_int area.memory_bits /. float_of_int full_bits);
          string_of_int run.after.total_length;
          string_of_int run.expanded_total_length;
          string_of_int area.gate_equivalents ])
    [ 2; 4; 8; 16 ];
  print_string (Bist_util.Ascii_table.render table);
  Format.printf
    "@.The memory need only hold the longest stored sequence; the tester@.\
     loads 'load cycles' vectors in total, while the circuit receives@.\
     'at-speed len' vectors at functional speed.@."
